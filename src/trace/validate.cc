#include "validate.hh"

#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "util/strings.hh"

namespace ovlsim::trace {

namespace {

using Channel = std::tuple<Rank, Rank, Tag>;

struct ChannelFlow
{
    std::vector<Bytes> sendBytes;
    std::vector<Bytes> recvBytes;
};

/** Record-kind name used in issue messages. */
const char *
kindName(const Record &rec)
{
    switch (recordKind(rec)) {
      case RecordKind::burst: return "burst";
      case RecordKind::send: return "send";
      case RecordKind::isend: return "isend";
      case RecordKind::recv: return "recv";
      case RecordKind::irecv: return "irecv";
      case RecordKind::wait: return "wait";
      case RecordKind::waitAll: return "waitall";
      case RecordKind::collective: return "collective";
    }
    return "unknown";
}

/**
 * Issue-message prefix carrying everything needed to find the
 * offending record in one read: the rank, the record index and the
 * record kind. Generator bugs (and hand-written traces) surface
 * here first, so "rank 3 record 17" alone made every diagnosis a
 * dump-and-count exercise.
 */
std::string
where(Rank rank, std::size_t i, const Record &rec)
{
    return strformat("rank %d record %zu (%s)", rank, i,
                     kindName(rec));
}

} // namespace

std::string
ValidationReport::toString() const
{
    std::ostringstream os;
    for (const auto &issue : issues)
        os << issue << "\n";
    return os.str();
}

ValidationReport
validateTraceSet(const TraceSet &traces)
{
    ValidationReport report;
    auto issue = [&report](const std::string &msg) {
        report.issues.push_back(msg);
    };

    std::map<Channel, ChannelFlow> channels;
    std::vector<std::vector<std::string>> collectives(
        static_cast<std::size_t>(traces.ranks()));

    for (const auto &rt : traces.all()) {
        const Rank rank = rt.rank();
        // Request id -> index of the posting record, for live
        // (un-waited) and ever-posted requests: naming the posting
        // record turns "request 7 reused"/"never completed" into a
        // one-read diagnosis.
        std::map<RequestId, std::size_t> live;
        std::map<RequestId, std::size_t> used;

        for (std::size_t i = 0; i < rt.records().size(); ++i) {
            const auto &rec = rt.records()[i];

            // The replay engine has no wildcard matching; flag the
            // anyRank/anyTag sentinels explicitly (replay would
            // otherwise reject them with a less precise FatalError).
            const auto flagWildcards = [&](Rank peer, Tag tag) {
                if (peer == anyRank) {
                    issue(where(rank, i, rec) +
                          ": uses the anyRank wildcard; wildcard "
                          "matching is unsupported");
                }
                if (tag == anyTag) {
                    issue(where(rank, i, rec) +
                          ": uses the anyTag wildcard; wildcard "
                          "matching is unsupported");
                }
            };

            const auto trackRequest = [&](RequestId request) {
                if (request == 0) {
                    issue(where(rank, i, rec) +
                          ": posted with request 0");
                    return;
                }
                const auto [first, fresh] =
                    used.emplace(request, i);
                if (!fresh) {
                    issue(where(rank, i, rec) +
                          strformat(": request %llu reused (first "
                                    "posted by record %zu)",
                                    static_cast<unsigned long long>(
                                        request),
                                    first->second));
                } else {
                    live.emplace(request, i);
                }
            };

            if (const auto *s = std::get_if<SendRec>(&rec)) {
                flagWildcards(s->dst, s->tag);
                if (s->dst == anyRank || s->tag == anyTag)
                    continue;
                if (s->dst < 0 || s->dst >= traces.ranks()) {
                    issue(where(rank, i, rec) +
                          strformat(": to invalid rank %d",
                                    s->dst));
                    continue;
                }
                channels[{rank, s->dst, s->tag}].sendBytes.push_back(
                    s->bytes);
            } else if (const auto *is_ = std::get_if<ISendRec>(&rec)) {
                flagWildcards(is_->dst, is_->tag);
                if (is_->dst == anyRank || is_->tag == anyTag)
                    continue;
                if (is_->dst < 0 || is_->dst >= traces.ranks()) {
                    issue(where(rank, i, rec) +
                          strformat(": to invalid rank %d",
                                    is_->dst));
                    continue;
                }
                channels[{rank, is_->dst, is_->tag}]
                    .sendBytes.push_back(is_->bytes);
                trackRequest(is_->request);
            } else if (const auto *r = std::get_if<RecvRec>(&rec)) {
                flagWildcards(r->src, r->tag);
                if (r->src == anyRank || r->tag == anyTag)
                    continue;
                if (r->src < 0 || r->src >= traces.ranks()) {
                    issue(where(rank, i, rec) +
                          strformat(": from invalid rank %d",
                                    r->src));
                    continue;
                }
                channels[{r->src, rank, r->tag}].recvBytes.push_back(
                    r->bytes);
            } else if (const auto *ir = std::get_if<IRecvRec>(&rec)) {
                flagWildcards(ir->src, ir->tag);
                if (ir->src == anyRank || ir->tag == anyTag)
                    continue;
                if (ir->src < 0 || ir->src >= traces.ranks()) {
                    issue(where(rank, i, rec) +
                          strformat(": from invalid rank %d",
                                    ir->src));
                    continue;
                }
                channels[{ir->src, rank, ir->tag}]
                    .recvBytes.push_back(ir->bytes);
                trackRequest(ir->request);
            } else if (const auto *w = std::get_if<WaitRec>(&rec)) {
                if (live.erase(w->request) == 0) {
                    issue(where(rank, i, rec) +
                          strformat(": wait on unknown request %llu",
                                    static_cast<unsigned long long>(
                                        w->request)));
                }
            } else if (std::holds_alternative<WaitAllRec>(rec)) {
                live.clear();
            } else if (const auto *g =
                           std::get_if<CollectiveRec>(&rec)) {
                collectives[static_cast<std::size_t>(rank)]
                    .push_back(strformat("%s/%llu/%llu/%d",
                                         collOpName(g->op),
                                         static_cast<unsigned long
                                                     long>(
                                             g->sendBytes),
                                         static_cast<unsigned long
                                                     long>(
                                             g->recvBytes),
                                         g->root));
            }
        }

        if (!live.empty()) {
            // Name the first dangling request's posting record so
            // the leak is findable without a dump.
            const auto &[request, posted] = *live.begin();
            issue(strformat(
                "rank %d: %zu non-blocking requests never completed "
                "(first: request %llu posted by record %zu (%s))",
                rank, live.size(),
                static_cast<unsigned long long>(request), posted,
                kindName(rt.records()[posted])));
        }
    }

    for (const auto &[channel, flow] : channels) {
        const auto &[src, dst, tag] = channel;
        if (flow.sendBytes.size() != flow.recvBytes.size()) {
            issue(strformat(
                "channel %d->%d tag %d: %zu sends but %zu receives",
                src, dst, tag, flow.sendBytes.size(),
                flow.recvBytes.size()));
            continue;
        }
        for (std::size_t k = 0; k < flow.sendBytes.size(); ++k) {
            if (flow.sendBytes[k] != flow.recvBytes[k]) {
                issue(strformat(
                    "channel %d->%d tag %d message %zu: send %llu "
                    "bytes vs recv %llu bytes",
                    src, dst, tag, k,
                    static_cast<unsigned long long>(
                        flow.sendBytes[k]),
                    static_cast<unsigned long long>(
                        flow.recvBytes[k])));
            }
        }
    }

    for (Rank r = 1; r < traces.ranks(); ++r) {
        const auto &a = collectives[0];
        const auto &b = collectives[static_cast<std::size_t>(r)];
        if (a.size() != b.size()) {
            issue(strformat(
                "rank %d executes %zu collectives but rank 0 "
                "executes %zu", r, b.size(), a.size()));
            continue;
        }
        for (std::size_t k = 0; k < a.size(); ++k) {
            // Root-dependent byte counts legitimately differ between
            // ranks for rooted collectives; compare op and root only.
            const auto op_of = [](const std::string &sig) {
                return sig.substr(0, sig.find('/'));
            };
            const auto root_of = [](const std::string &sig) {
                return sig.substr(sig.rfind('/'));
            };
            if (op_of(a[k]) != op_of(b[k]) ||
                root_of(a[k]) != root_of(b[k])) {
                issue(strformat(
                    "collective %zu differs between rank 0 (%s) and "
                    "rank %d (%s)", k, a[k].c_str(), r,
                    b[k].c_str()));
            }
        }
    }

    return report;
}

} // namespace ovlsim::trace
