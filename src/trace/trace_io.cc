#include "trace_io.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "util/strings.hh"

namespace ovlsim::trace {

namespace {

constexpr const char *traceMagic = "#OVLSIM-TRACE 1";
constexpr const char *overlapMagic = "#OVLSIM-OVERLAP 1";

struct RecordWriter
{
    std::ostream &os;

    void
    operator()(const CpuBurst &r) const
    {
        os << "c " << r.instructions << "\n";
    }
    void
    operator()(const SendRec &r) const
    {
        os << "s " << r.dst << " " << r.tag << " " << r.bytes << " "
           << r.message << "\n";
    }
    void
    operator()(const ISendRec &r) const
    {
        os << "is " << r.dst << " " << r.tag << " " << r.bytes << " "
           << r.message << " " << r.request << "\n";
    }
    void
    operator()(const RecvRec &r) const
    {
        os << "r " << r.src << " " << r.tag << " " << r.bytes << " "
           << r.message << "\n";
    }
    void
    operator()(const IRecvRec &r) const
    {
        os << "ir " << r.src << " " << r.tag << " " << r.bytes << " "
           << r.message << " " << r.request << "\n";
    }
    void
    operator()(const WaitRec &r) const
    {
        os << "w " << r.request << "\n";
    }
    void operator()(const WaitAllRec &) const { os << "wa\n"; }
    void
    operator()(const CollectiveRec &r) const
    {
        os << "g " << collOpName(r.op) << " " << r.sendBytes << " "
           << r.recvBytes << " " << r.root << "\n";
    }
};

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok)
        tokens.push_back(tok);
    return tokens;
}

[[noreturn]] void
parseError(std::size_t line_no, const std::string &why)
{
    fatal("trace parse error at line ", line_no, ": ", why);
}

void
requireTokens(const std::vector<std::string> &tokens,
              std::size_t expected, std::size_t line_no)
{
    if (tokens.size() != expected) {
        parseError(line_no,
                   strformat("expected %zu fields, got %zu", expected,
                             tokens.size()));
    }
}

} // namespace

void
writeTraceText(const TraceSet &traces, std::ostream &os)
{
    os << traceMagic << "\n";
    os << "name " << traces.name() << "\n";
    os << "mips " << strformat("%.17g", traces.mips()) << "\n";
    os << "ranks " << traces.ranks() << "\n";
    for (const auto &rt : traces.all()) {
        os << "rank " << rt.rank() << "\n";
        RecordWriter writer{os};
        for (const auto &rec : rt.records())
            std::visit(writer, rec);
    }
}

void
writeTraceFile(const TraceSet &traces, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    writeTraceText(traces, os);
    if (!os)
        fatal("error while writing trace to '", path, "'");
}

TraceSet
readTraceText(std::istream &is)
{
    std::string line;
    std::size_t line_no = 0;

    if (!std::getline(is, line) || trim(line) != traceMagic)
        fatal("trace stream does not start with '", traceMagic, "'");
    ++line_no;

    TraceSet traces;
    std::string name = "unnamed";
    double mips = 1000.0;
    int ranks = -1;
    RankTrace *current = nullptr;

    while (std::getline(is, line)) {
        ++line_no;
        const std::string text = trim(line);
        if (text.empty() || text[0] == '#')
            continue;
        const auto tokens = tokenize(text);
        const std::string &kind = tokens[0];

        if (kind == "name") {
            // The name may contain spaces: take the raw remainder.
            name = trim(text.substr(4));
            continue;
        }
        if (kind == "mips") {
            requireTokens(tokens, 2, line_no);
            mips = parseDouble(tokens[1]);
            continue;
        }
        if (kind == "ranks") {
            requireTokens(tokens, 2, line_no);
            ranks = static_cast<int>(parseInt(tokens[1]));
            if (ranks <= 0)
                parseError(line_no, "rank count must be positive");
            traces = TraceSet(name, ranks, mips);
            continue;
        }
        if (kind == "rank") {
            requireTokens(tokens, 2, line_no);
            if (ranks < 0)
                parseError(line_no, "'rank' before 'ranks'");
            const auto r = static_cast<Rank>(parseInt(tokens[1]));
            if (r < 0 || r >= ranks)
                parseError(line_no, "rank out of range");
            current = &traces.rankTrace(r);
            continue;
        }

        if (current == nullptr)
            parseError(line_no, "record before any 'rank' header");

        if (kind == "c") {
            requireTokens(tokens, 2, line_no);
            current->append(CpuBurst{
                static_cast<Instr>(parseInt(tokens[1]))});
        } else if (kind == "s") {
            requireTokens(tokens, 5, line_no);
            current->append(SendRec{
                static_cast<Rank>(parseInt(tokens[1])),
                static_cast<Tag>(parseInt(tokens[2])),
                static_cast<Bytes>(parseInt(tokens[3])),
                static_cast<MessageId>(parseInt(tokens[4]))});
        } else if (kind == "is") {
            requireTokens(tokens, 6, line_no);
            current->append(ISendRec{
                static_cast<Rank>(parseInt(tokens[1])),
                static_cast<Tag>(parseInt(tokens[2])),
                static_cast<Bytes>(parseInt(tokens[3])),
                static_cast<MessageId>(parseInt(tokens[4])),
                static_cast<RequestId>(parseInt(tokens[5]))});
        } else if (kind == "r") {
            requireTokens(tokens, 5, line_no);
            current->append(RecvRec{
                static_cast<Rank>(parseInt(tokens[1])),
                static_cast<Tag>(parseInt(tokens[2])),
                static_cast<Bytes>(parseInt(tokens[3])),
                static_cast<MessageId>(parseInt(tokens[4]))});
        } else if (kind == "ir") {
            requireTokens(tokens, 6, line_no);
            current->append(IRecvRec{
                static_cast<Rank>(parseInt(tokens[1])),
                static_cast<Tag>(parseInt(tokens[2])),
                static_cast<Bytes>(parseInt(tokens[3])),
                static_cast<MessageId>(parseInt(tokens[4])),
                static_cast<RequestId>(parseInt(tokens[5]))});
        } else if (kind == "w") {
            requireTokens(tokens, 2, line_no);
            current->append(WaitRec{
                static_cast<RequestId>(parseInt(tokens[1]))});
        } else if (kind == "wa") {
            requireTokens(tokens, 1, line_no);
            current->append(WaitAllRec{});
        } else if (kind == "g") {
            requireTokens(tokens, 5, line_no);
            current->append(CollectiveRec{
                collOpFromName(tokens[1]),
                static_cast<Bytes>(parseInt(tokens[2])),
                static_cast<Bytes>(parseInt(tokens[3])),
                static_cast<Rank>(parseInt(tokens[4]))});
        } else {
            parseError(line_no, "unknown record kind '" + kind + "'");
        }
    }

    if (ranks < 0)
        fatal("trace stream contains no 'ranks' header");
    return traces;
}

TraceSet
readTraceFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open trace file '", path, "'");
    return readTraceText(is);
}

void
writeOverlapText(const OverlapSet &overlap, std::ostream &os)
{
    os << overlapMagic << "\n";
    for (const auto &[id, info] : overlap.all()) {
        os << "msg " << id << " " << info.src << " " << info.dst
           << " " << info.tag << " " << info.bytes << " "
           << info.sendInstr << " " << info.recvInstr << " "
           << info.prodWindowBegin << " " << info.consWindowEnd
           << " " << info.blockBytes << "\n";
        os << "prod " << id << " " << info.blockLastStore.size();
        for (const auto p : info.blockLastStore)
            os << " " << p;
        os << "\n";
        os << "cons " << id << " " << info.blockFirstLoad.size();
        for (const auto c : info.blockFirstLoad)
            os << " " << c;
        os << "\n";
    }
}

void
writeOverlapFile(const OverlapSet &overlap, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    writeOverlapText(overlap, os);
    if (!os)
        fatal("error while writing overlap metadata to '", path, "'");
}

OverlapSet
readOverlapText(std::istream &is)
{
    std::string line;
    std::size_t line_no = 0;

    if (!std::getline(is, line) || trim(line) != overlapMagic)
        fatal("overlap stream does not start with '", overlapMagic,
              "'");
    ++line_no;

    OverlapSet overlap;
    MessageOverlapInfo pending;
    bool have_pending = false;
    bool have_prod = false;
    bool have_cons = false;

    auto flush = [&]() {
        if (!have_pending)
            return;
        if (!have_prod || !have_cons) {
            fatal("overlap metadata for message ", pending.id,
                  " is missing prod/cons profiles");
        }
        overlap.add(std::move(pending));
        pending = MessageOverlapInfo{};
        have_pending = have_prod = have_cons = false;
    };

    while (std::getline(is, line)) {
        ++line_no;
        const std::string text = trim(line);
        if (text.empty() || text[0] == '#')
            continue;
        const auto tokens = tokenize(text);
        const std::string &kind = tokens[0];

        if (kind == "msg") {
            flush();
            requireTokens(tokens, 11, line_no);
            pending.id =
                static_cast<MessageId>(parseInt(tokens[1]));
            pending.src = static_cast<Rank>(parseInt(tokens[2]));
            pending.dst = static_cast<Rank>(parseInt(tokens[3]));
            pending.tag = static_cast<Tag>(parseInt(tokens[4]));
            pending.bytes = static_cast<Bytes>(parseInt(tokens[5]));
            pending.sendInstr =
                static_cast<Instr>(parseInt(tokens[6]));
            pending.recvInstr =
                static_cast<Instr>(parseInt(tokens[7]));
            pending.prodWindowBegin =
                static_cast<Instr>(parseInt(tokens[8]));
            pending.consWindowEnd =
                static_cast<Instr>(parseInt(tokens[9]));
            pending.blockBytes =
                static_cast<Bytes>(parseInt(tokens[10]));
            have_pending = true;
        } else if (kind == "prod" || kind == "cons") {
            if (!have_pending)
                parseError(line_no, "profile before 'msg' header");
            if (tokens.size() < 3)
                parseError(line_no, "truncated profile line");
            const auto id =
                static_cast<MessageId>(parseInt(tokens[1]));
            if (id != pending.id)
                parseError(line_no, "profile id mismatch");
            const auto n =
                static_cast<std::size_t>(parseInt(tokens[2]));
            requireTokens(tokens, 3 + n, line_no);
            std::vector<Instr> points;
            points.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                points.push_back(
                    static_cast<Instr>(parseInt(tokens[3 + i])));
            }
            if (kind == "prod") {
                pending.blockLastStore = std::move(points);
                have_prod = true;
            } else {
                pending.blockFirstLoad = std::move(points);
                have_cons = true;
            }
        } else {
            parseError(line_no, "unknown line kind '" + kind + "'");
        }
    }
    flush();
    return overlap;
}

OverlapSet
readOverlapFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open overlap file '", path, "'");
    return readOverlapText(is);
}

} // namespace ovlsim::trace
