#include "binary_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/logging.hh"

namespace ovlsim::trace {

namespace {

constexpr char traceMagic[4] = {'O', 'V', 'L', 'B'};
constexpr char overlapMagic[4] = {'O', 'V', 'L', 'O'};
constexpr std::uint32_t formatVersion = 1;

/** Record kind tags in the binary stream. */
enum class BinKind : std::uint8_t {
    cpu = 0,
    send = 1,
    isend = 2,
    recv = 3,
    irecv = 4,
    wait = 5,
    waitAll = 6,
    collective = 7,
};

class Writer
{
  public:
    explicit Writer(std::ostream &os) : os_(os) {}

    void
    raw(const void *data, std::size_t len)
    {
        os_.write(static_cast<const char *>(data),
                  static_cast<std::streamsize>(len));
    }

    template <typename T>
    void
    value(T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        raw(&v, sizeof(v));
    }

    void
    str(const std::string &s)
    {
        value<std::uint32_t>(
            static_cast<std::uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

    bool ok() const { return static_cast<bool>(os_); }

  private:
    std::ostream &os_;
};

class Reader
{
  public:
    explicit Reader(std::istream &is) : is_(is) {}

    void
    raw(void *data, std::size_t len)
    {
        is_.read(static_cast<char *>(data),
                 static_cast<std::streamsize>(len));
        if (!is_)
            fatal("binary trace: truncated stream");
    }

    template <typename T>
    T
    value()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        raw(&v, sizeof(v));
        return v;
    }

    std::string
    str(std::uint32_t max_len = 1 << 20)
    {
        const auto len = value<std::uint32_t>();
        if (len > max_len)
            fatal("binary trace: implausible string length ",
                  len);
        std::string s(len, '\0');
        if (len > 0)
            raw(s.data(), len);
        return s;
    }

  private:
    std::istream &is_;
};

struct RecordBinWriter
{
    Writer &w;

    void
    operator()(const CpuBurst &r) const
    {
        w.value(BinKind::cpu);
        w.value<std::uint64_t>(r.instructions);
    }
    void
    operator()(const SendRec &r) const
    {
        w.value(BinKind::send);
        w.value<std::int32_t>(r.dst);
        w.value<std::int32_t>(r.tag);
        w.value<std::uint64_t>(r.bytes);
        w.value<std::uint64_t>(r.message);
    }
    void
    operator()(const ISendRec &r) const
    {
        w.value(BinKind::isend);
        w.value<std::int32_t>(r.dst);
        w.value<std::int32_t>(r.tag);
        w.value<std::uint64_t>(r.bytes);
        w.value<std::uint64_t>(r.message);
        w.value<std::uint64_t>(r.request);
    }
    void
    operator()(const RecvRec &r) const
    {
        w.value(BinKind::recv);
        w.value<std::int32_t>(r.src);
        w.value<std::int32_t>(r.tag);
        w.value<std::uint64_t>(r.bytes);
        w.value<std::uint64_t>(r.message);
    }
    void
    operator()(const IRecvRec &r) const
    {
        w.value(BinKind::irecv);
        w.value<std::int32_t>(r.src);
        w.value<std::int32_t>(r.tag);
        w.value<std::uint64_t>(r.bytes);
        w.value<std::uint64_t>(r.message);
        w.value<std::uint64_t>(r.request);
    }
    void
    operator()(const WaitRec &r) const
    {
        w.value(BinKind::wait);
        w.value<std::uint64_t>(r.request);
    }
    void
    operator()(const WaitAllRec &) const
    {
        w.value(BinKind::waitAll);
    }
    void
    operator()(const CollectiveRec &r) const
    {
        w.value(BinKind::collective);
        w.value<std::uint8_t>(static_cast<std::uint8_t>(r.op));
        w.value<std::uint64_t>(r.sendBytes);
        w.value<std::uint64_t>(r.recvBytes);
        w.value<std::int32_t>(r.root);
    }
};

Record
readRecord(Reader &r)
{
    const auto kind = r.value<BinKind>();
    switch (kind) {
      case BinKind::cpu:
        return CpuBurst{r.value<std::uint64_t>()};
      case BinKind::send: {
        SendRec rec;
        rec.dst = r.value<std::int32_t>();
        rec.tag = r.value<std::int32_t>();
        rec.bytes = r.value<std::uint64_t>();
        rec.message = r.value<std::uint64_t>();
        return rec;
      }
      case BinKind::isend: {
        ISendRec rec;
        rec.dst = r.value<std::int32_t>();
        rec.tag = r.value<std::int32_t>();
        rec.bytes = r.value<std::uint64_t>();
        rec.message = r.value<std::uint64_t>();
        rec.request = r.value<std::uint64_t>();
        return rec;
      }
      case BinKind::recv: {
        RecvRec rec;
        rec.src = r.value<std::int32_t>();
        rec.tag = r.value<std::int32_t>();
        rec.bytes = r.value<std::uint64_t>();
        rec.message = r.value<std::uint64_t>();
        return rec;
      }
      case BinKind::irecv: {
        IRecvRec rec;
        rec.src = r.value<std::int32_t>();
        rec.tag = r.value<std::int32_t>();
        rec.bytes = r.value<std::uint64_t>();
        rec.message = r.value<std::uint64_t>();
        rec.request = r.value<std::uint64_t>();
        return rec;
      }
      case BinKind::wait:
        return WaitRec{r.value<std::uint64_t>()};
      case BinKind::waitAll:
        return WaitAllRec{};
      case BinKind::collective: {
        CollectiveRec rec;
        const auto op = r.value<std::uint8_t>();
        if (op > static_cast<std::uint8_t>(CollOp::allToAll))
            fatal("binary trace: bad collective op ", op);
        rec.op = static_cast<CollOp>(op);
        rec.sendBytes = r.value<std::uint64_t>();
        rec.recvBytes = r.value<std::uint64_t>();
        rec.root = r.value<std::int32_t>();
        return rec;
      }
    }
    fatal("binary trace: unknown record kind ",
          static_cast<int>(kind));
}

void
checkMagic(Reader &r, const char (&magic)[4], const char *what)
{
    char buf[4];
    r.raw(buf, 4);
    if (std::memcmp(buf, magic, 4) != 0)
        fatal("binary ", what, ": bad magic");
    const auto version = r.value<std::uint32_t>();
    if (version != formatVersion)
        fatal("binary ", what, ": unsupported version ", version);
}

} // namespace

void
writeTraceBinary(const TraceSet &traces, std::ostream &os)
{
    Writer w(os);
    w.raw(traceMagic, 4);
    w.value(formatVersion);
    w.str(traces.name());
    w.value<double>(traces.mips());
    w.value<std::uint32_t>(
        static_cast<std::uint32_t>(traces.ranks()));
    for (const auto &rt : traces.all()) {
        w.value<std::uint32_t>(
            static_cast<std::uint32_t>(rt.rank()));
        w.value<std::uint64_t>(rt.size());
        RecordBinWriter writer{w};
        for (const auto &rec : rt.records())
            std::visit(writer, rec);
    }
    if (!w.ok())
        fatal("binary trace: write error");
}

TraceSet
readTraceBinary(std::istream &is)
{
    Reader r(is);
    checkMagic(r, traceMagic, "trace");
    const std::string name = r.str();
    const double mips = r.value<double>();
    const auto ranks = r.value<std::uint32_t>();
    if (ranks == 0 || ranks > (1u << 24))
        fatal("binary trace: implausible rank count ", ranks);
    if (mips <= 0.0)
        fatal("binary trace: non-positive MIPS rate");

    TraceSet traces(name, static_cast<int>(ranks), mips);
    for (std::uint32_t i = 0; i < ranks; ++i) {
        const auto rank = r.value<std::uint32_t>();
        if (rank >= ranks)
            fatal("binary trace: rank ", rank, " out of range");
        const auto count = r.value<std::uint64_t>();
        auto &rt = traces.rankTrace(static_cast<Rank>(rank));
        rt.records().reserve(count);
        for (std::uint64_t k = 0; k < count; ++k)
            rt.append(readRecord(r));
    }
    return traces;
}

void
writeTraceBinaryFile(const TraceSet &traces,
                     const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    writeTraceBinary(traces, os);
}

TraceSet
readTraceBinaryFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open binary trace '", path, "'");
    return readTraceBinary(is);
}

void
writeOverlapBinary(const OverlapSet &overlap, std::ostream &os)
{
    Writer w(os);
    w.raw(overlapMagic, 4);
    w.value(formatVersion);
    w.value<std::uint64_t>(overlap.size());
    for (const auto &[id, info] : overlap.all()) {
        w.value<std::uint64_t>(id);
        w.value<std::int32_t>(info.src);
        w.value<std::int32_t>(info.dst);
        w.value<std::int32_t>(info.tag);
        w.value<std::uint64_t>(info.bytes);
        w.value<std::uint64_t>(info.sendInstr);
        w.value<std::uint64_t>(info.recvInstr);
        w.value<std::uint64_t>(info.prodWindowBegin);
        w.value<std::uint64_t>(info.consWindowEnd);
        w.value<std::uint64_t>(info.blockBytes);
        w.value<std::uint64_t>(info.blockLastStore.size());
        for (const auto p : info.blockLastStore)
            w.value<std::uint64_t>(p);
        w.value<std::uint64_t>(info.blockFirstLoad.size());
        for (const auto c : info.blockFirstLoad)
            w.value<std::uint64_t>(c);
    }
    if (!w.ok())
        fatal("binary overlap: write error");
}

OverlapSet
readOverlapBinary(std::istream &is)
{
    Reader r(is);
    checkMagic(r, overlapMagic, "overlap");
    const auto count = r.value<std::uint64_t>();
    if (count > (1ull << 40))
        fatal("binary overlap: implausible message count");

    OverlapSet overlap;
    for (std::uint64_t i = 0; i < count; ++i) {
        MessageOverlapInfo info;
        info.id = r.value<std::uint64_t>();
        info.src = r.value<std::int32_t>();
        info.dst = r.value<std::int32_t>();
        info.tag = r.value<std::int32_t>();
        info.bytes = r.value<std::uint64_t>();
        info.sendInstr = r.value<std::uint64_t>();
        info.recvInstr = r.value<std::uint64_t>();
        info.prodWindowBegin = r.value<std::uint64_t>();
        info.consWindowEnd = r.value<std::uint64_t>();
        info.blockBytes = r.value<std::uint64_t>();
        const auto stores = r.value<std::uint64_t>();
        if (stores > (1ull << 32))
            fatal("binary overlap: implausible profile size");
        info.blockLastStore.reserve(stores);
        for (std::uint64_t b = 0; b < stores; ++b)
            info.blockLastStore.push_back(
                r.value<std::uint64_t>());
        const auto loads = r.value<std::uint64_t>();
        if (loads > (1ull << 32))
            fatal("binary overlap: implausible profile size");
        info.blockFirstLoad.reserve(loads);
        for (std::uint64_t b = 0; b < loads; ++b)
            info.blockFirstLoad.push_back(
                r.value<std::uint64_t>());
        overlap.add(std::move(info));
    }
    return overlap;
}

void
writeOverlapBinaryFile(const OverlapSet &overlap,
                       const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    writeOverlapBinary(overlap, os);
}

OverlapSet
readOverlapBinaryFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open binary overlap '", path, "'");
    return readOverlapBinary(is);
}

} // namespace ovlsim::trace
