#include "vm.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/mathutil.hh"

namespace ovlsim::vm {

VmContext::VmContext(Rank rank, int ranks, VmObserver &observer)
    : rank_(rank), ranks_(ranks), observer_(observer)
{
    ovlAssert(rank >= 0 && rank < ranks,
              "VmContext rank out of range");
}

void
VmContext::compute(Instr n)
{
    if (n == 0)
        return;
    instr_ += n;
    observer_.onCompute(rank_, instr_, n);
}

Buffer
VmContext::allocBuffer(const std::string &name, Bytes bytes)
{
    if (bytes == 0)
        fatal("allocBuffer('", name, "'): zero-sized buffer");
    Buffer buf{nextBuffer_++, bytes};
    bufferSizes_.push_back(bytes);
    observer_.onAllocBuffer(rank_, instr_, buf, name);
    return buf;
}

void
VmContext::checkRange(Buffer buf, Bytes offset, Bytes len,
                      const char *what) const
{
    if (buf.id == 0 || buf.id > bufferSizes_.size())
        fatal(what, ": unknown buffer id ", buf.id);
    const Bytes size = bufferSizes_[buf.id - 1];
    if (len == 0)
        fatal(what, ": zero-length range");
    if (offset > size || len > size - offset) {
        fatal(what, ": range [", offset, ", ", offset + len,
              ") exceeds buffer of ", size, " bytes");
    }
}

void
VmContext::checkPeer(Rank peer, const char *what) const
{
    if (peer < 0 || peer >= ranks_)
        fatal(what, ": peer rank ", peer, " out of range");
    if (peer == rank_)
        fatal(what, ": self-messaging is not supported");
}

void
VmContext::checkRoot(Rank root) const
{
    if (root < 0 || root >= ranks_)
        fatal("collective: root rank ", root, " out of range");
}

ProvisionalId
VmContext::nextProvisional()
{
    // Rank-tagged so ids from different ranks never collide.
    return (static_cast<std::uint64_t>(rank_) + 1) << 40 |
        nextMessageSeq_++;
}

void
VmContext::touchStore(Buffer buf, Bytes offset, Bytes len)
{
    checkRange(buf, offset, len, "touchStore");
    observer_.onStore(rank_, instr_, buf, offset, len);
}

void
VmContext::touchLoad(Buffer buf, Bytes offset, Bytes len)
{
    checkRange(buf, offset, len, "touchLoad");
    observer_.onLoad(rank_, instr_, buf, offset, len);
}

namespace {

/** Split [offset, offset+len) into `pieces` nearly equal parts. */
struct PieceIter
{
    Bytes offset;
    Bytes len;
    int pieces;

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const auto n = static_cast<Bytes>(std::max(pieces, 1));
        const Bytes base = len / n;
        const Bytes extra = len % n;
        Bytes at = offset;
        for (Bytes p = 0; p < n && at < offset + len; ++p) {
            const Bytes piece = base + (p < extra ? 1 : 0);
            if (piece == 0)
                continue;
            fn(at, piece);
            at += piece;
        }
    }
};

Instr
instrFor(Bytes bytes, double instr_per_byte)
{
    const double raw =
        static_cast<double>(bytes) * instr_per_byte;
    return static_cast<Instr>(std::llround(std::max(raw, 0.0)));
}

} // namespace

void
VmContext::computeStore(Buffer buf, Bytes offset, Bytes len,
                        double instr_per_byte, int pieces)
{
    checkRange(buf, offset, len, "computeStore");
    PieceIter{offset, len, pieces}.forEach(
        [&](Bytes at, Bytes piece) {
            compute(instrFor(piece, instr_per_byte));
            touchStore(buf, at, piece);
        });
}

void
VmContext::computeLoad(Buffer buf, Bytes offset, Bytes len,
                       double instr_per_byte, int pieces)
{
    checkRange(buf, offset, len, "computeLoad");
    PieceIter{offset, len, pieces}.forEach(
        [&](Bytes at, Bytes piece) {
            touchLoad(buf, at, piece);
            compute(instrFor(piece, instr_per_byte));
        });
}

void
VmContext::send(Buffer buf, Bytes offset, Bytes len, Rank dst,
                Tag tag)
{
    checkRange(buf, offset, len, "send");
    checkPeer(dst, "send");
    observer_.onSend(rank_, instr_, buf, offset, len, dst, tag,
                     nextProvisional());
}

void
VmContext::recv(Buffer buf, Bytes offset, Bytes len, Rank src,
                Tag tag)
{
    checkRange(buf, offset, len, "recv");
    checkPeer(src, "recv");
    observer_.onRecv(rank_, instr_, buf, offset, len, src, tag,
                     nextProvisional());
}

VmRequest
VmContext::isend(Buffer buf, Bytes offset, Bytes len, Rank dst,
                 Tag tag)
{
    checkRange(buf, offset, len, "isend");
    checkPeer(dst, "isend");
    const trace::RequestId req = nextRequest_++;
    liveRequests_.push_back(req);
    observer_.onISend(rank_, instr_, buf, offset, len, dst, tag,
                      nextProvisional(), req);
    return VmRequest{req};
}

VmRequest
VmContext::irecv(Buffer buf, Bytes offset, Bytes len, Rank src,
                 Tag tag)
{
    checkRange(buf, offset, len, "irecv");
    checkPeer(src, "irecv");
    const trace::RequestId req = nextRequest_++;
    liveRequests_.push_back(req);
    observer_.onIRecv(rank_, instr_, buf, offset, len, src, tag,
                      nextProvisional(), req);
    return VmRequest{req};
}

void
VmContext::wait(VmRequest request)
{
    const auto it = std::find(liveRequests_.begin(),
                              liveRequests_.end(), request.id);
    if (it == liveRequests_.end())
        fatal("wait: request ", request.id,
              " is not outstanding on rank ", rank_);
    liveRequests_.erase(it);
    observer_.onWait(rank_, instr_, request.id);
}

void
VmContext::waitAll()
{
    liveRequests_.clear();
    observer_.onWaitAll(rank_, instr_);
}

void
VmContext::barrier()
{
    observer_.onCollective(rank_, instr_, trace::CollOp::barrier, 0,
                           0, 0);
}

void
VmContext::broadcast(Bytes bytes, Rank root)
{
    checkRoot(root);
    observer_.onCollective(rank_, instr_, trace::CollOp::broadcast,
                           bytes, bytes, root);
}

void
VmContext::reduce(Bytes bytes, Rank root)
{
    checkRoot(root);
    observer_.onCollective(rank_, instr_, trace::CollOp::reduce,
                           bytes, bytes, root);
}

void
VmContext::allReduce(Bytes bytes)
{
    observer_.onCollective(rank_, instr_, trace::CollOp::allReduce,
                           bytes, bytes, 0);
}

void
VmContext::gather(Bytes bytes, Rank root)
{
    checkRoot(root);
    observer_.onCollective(rank_, instr_, trace::CollOp::gather,
                           bytes, bytes, root);
}

void
VmContext::allGather(Bytes bytes)
{
    observer_.onCollective(rank_, instr_, trace::CollOp::allGather,
                           bytes, bytes, 0);
}

void
VmContext::scatter(Bytes bytes, Rank root)
{
    checkRoot(root);
    observer_.onCollective(rank_, instr_, trace::CollOp::scatter,
                           bytes, bytes, root);
}

void
VmContext::allToAll(Bytes bytes)
{
    observer_.onCollective(rank_, instr_, trace::CollOp::allToAll,
                           bytes, bytes, 0);
}

void
VmContext::finish()
{
    if (!liveRequests_.empty()) {
        fatal("rank ", rank_, " finished with ",
              liveRequests_.size(),
              " outstanding non-blocking requests");
    }
    observer_.onFinish(rank_, instr_);
}

void
VmHost::run(int ranks, const RankProgram &program,
            VmObserver &observer)
{
    ovlAssert(ranks > 0, "VmHost needs at least one rank");
    ovlAssert(program != nullptr, "VmHost needs a program");
    for (Rank r = 0; r < ranks; ++r) {
        VmContext ctx(r, ranks, observer);
        program(ctx);
        ctx.finish();
    }
}

} // namespace ovlsim::vm
