/**
 * @file
 * Instruction-counting virtual machine with a mini-MPI API.
 *
 * This module replaces the paper's per-process Valgrind virtual
 * machines. Each simulated rank runs a C++ "program" against a
 * VmContext that exposes exactly the observables the paper's tracing
 * tool extracts by binary instrumentation:
 *
 *  - an instruction counter advanced by compute() (time-stamps "in
 *    terms of the number of instructions executed in computation
 *    bursts"),
 *  - registered communication buffers whose loads and stores are
 *    reported at byte-range granularity (touchLoad / touchStore), and
 *  - wrapped MPI-like calls (send/recv/isend/irecv/wait/collectives).
 *
 * The VM performs no timing and moves no data: ranks execute
 * sequentially and independently, and an attached VmObserver — the
 * tracing tool — turns the callback stream into traces.
 */

#ifndef OVLSIM_VM_VM_HH
#define OVLSIM_VM_VM_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "trace/record.hh"
#include "util/types.hh"

namespace ovlsim::vm {

/** Handle to a registered communication buffer (rank-local). */
struct Buffer
{
    std::uint32_t id = 0;
    Bytes size = 0;
};

/** Handle to an outstanding non-blocking operation. */
struct VmRequest
{
    trace::RequestId id = 0;
};

/**
 * Provisional message id: identifies one endpoint of a message before
 * the trace linker pairs senders with receivers.
 */
using ProvisionalId = std::uint64_t;

/**
 * Receiver of the VM's instrumentation stream; the tracing tool
 * implements this. All callbacks carry the issuing rank and its
 * current instruction counter.
 */
class VmObserver
{
  public:
    virtual ~VmObserver() = default;

    virtual void
    onAllocBuffer(Rank, Instr, Buffer, const std::string &)
    {}
    virtual void onCompute(Rank, Instr, Instr) {}
    virtual void onStore(Rank, Instr, Buffer, Bytes, Bytes) {}
    virtual void onLoad(Rank, Instr, Buffer, Bytes, Bytes) {}
    virtual void
    onSend(Rank, Instr, Buffer, Bytes, Bytes, Rank, Tag,
           ProvisionalId)
    {}
    virtual void
    onRecv(Rank, Instr, Buffer, Bytes, Bytes, Rank, Tag,
           ProvisionalId)
    {}
    virtual void
    onISend(Rank, Instr, Buffer, Bytes, Bytes, Rank, Tag,
            ProvisionalId, trace::RequestId)
    {}
    virtual void
    onIRecv(Rank, Instr, Buffer, Bytes, Bytes, Rank, Tag,
            ProvisionalId, trace::RequestId)
    {}
    virtual void onWait(Rank, Instr, trace::RequestId) {}
    virtual void onWaitAll(Rank, Instr) {}
    virtual void
    onCollective(Rank, Instr, trace::CollOp, Bytes, Bytes, Rank)
    {}
    virtual void onFinish(Rank, Instr) {}
};

/**
 * The per-rank execution context handed to application programs.
 *
 * All offsets are validated against buffer bounds; misuse raises
 * FatalError (it is an application bug, caught at trace time just as
 * Valgrind would catch it at run time).
 */
class VmContext
{
  public:
    VmContext(Rank rank, int ranks, VmObserver &observer);

    Rank rank() const { return rank_; }
    int ranks() const { return ranks_; }

    /** Current instruction counter. */
    Instr now() const { return instr_; }

    /** Execute `n` virtual instructions of opaque computation. */
    void compute(Instr n);

    /** Register a communication buffer of `bytes` bytes. */
    Buffer allocBuffer(const std::string &name, Bytes bytes);

    /** Report stores covering [offset, offset+len) of a buffer. */
    void touchStore(Buffer buf, Bytes offset, Bytes len);

    /** Report loads covering [offset, offset+len) of a buffer. */
    void touchLoad(Buffer buf, Bytes offset, Bytes len);

    /**
     * Model a loop that computes and progressively stores a region:
     * the region is written in `pieces` equal parts, each preceded by
     * its share of `instr_per_byte * len` instructions.
     */
    void computeStore(Buffer buf, Bytes offset, Bytes len,
                      double instr_per_byte, int pieces = 8);

    /** Like computeStore, for a region that is progressively read. */
    void computeLoad(Buffer buf, Bytes offset, Bytes len,
                     double instr_per_byte, int pieces = 8);

    /** Blocking standard send. */
    void send(Buffer buf, Bytes offset, Bytes len, Rank dst,
              Tag tag);

    /** Blocking receive. */
    void recv(Buffer buf, Bytes offset, Bytes len, Rank src,
              Tag tag);

    /** Non-blocking send; complete with wait()/waitAll(). */
    VmRequest isend(Buffer buf, Bytes offset, Bytes len, Rank dst,
                    Tag tag);

    /** Non-blocking receive; complete with wait()/waitAll(). */
    VmRequest irecv(Buffer buf, Bytes offset, Bytes len, Rank src,
                    Tag tag);

    /** Complete one outstanding request. */
    void wait(VmRequest request);

    /** Complete all outstanding requests. */
    void waitAll();

    /** Collectives over all ranks. */
    void barrier();
    void broadcast(Bytes bytes, Rank root);
    void reduce(Bytes bytes, Rank root);
    void allReduce(Bytes bytes);
    void gather(Bytes bytes, Rank root);
    void allGather(Bytes bytes);
    void scatter(Bytes bytes, Rank root);
    void allToAll(Bytes bytes);

    /** Called by the host after the program returns. */
    void finish();

  private:
    void checkRange(Buffer buf, Bytes offset, Bytes len,
                    const char *what) const;
    void checkPeer(Rank peer, const char *what) const;
    void checkRoot(Rank root) const;
    ProvisionalId nextProvisional();

    Rank rank_;
    int ranks_;
    VmObserver &observer_;
    Instr instr_ = 0;
    std::uint32_t nextBuffer_ = 1;
    std::vector<Bytes> bufferSizes_;
    trace::RequestId nextRequest_ = 1;
    std::uint64_t nextMessageSeq_ = 1;
    std::vector<trace::RequestId> liveRequests_;
};

/** A rank's program: plain C++ run against the context. */
using RankProgram = std::function<void(VmContext &)>;

/**
 * Runs one virtual machine per rank, sequentially and
 * deterministically, feeding a shared observer.
 */
class VmHost
{
  public:
    /**
     * Execute `program` for every rank in [0, ranks).
     *
     * @param ranks number of simulated processes
     * @param program per-rank entry point (receives the context)
     * @param observer instrumentation sink (the tracing tool)
     */
    static void run(int ranks, const RankProgram &program,
                    VmObserver &observer);
};

} // namespace ovlsim::vm

#endif // OVLSIM_VM_VM_HH
