/**
 * @file
 * The automatic-overlap trace transformation (the paper's core).
 *
 * Following the paper's mechanism: every original (blocking)
 * point-to-point message is partitioned into independent chunks;
 * every chunk is sent as soon as it is produced and awaited in the
 * moment its data is first needed for consumption. The transformation
 * rewrites the original trace into the "potential" overlapped trace
 * using the production/consumption profiles measured by the tracer:
 *
 *  - sender side: the chunk's ISend is injected into the computation
 *    burst at the chunk's production instant; the original Send
 *    record becomes the buffer-reuse Waits for all chunk requests;
 *  - receiver side: the original Recv record becomes the early IRecv
 *    posts for all chunks; each chunk's Wait is injected at its first
 *    consumption instant.
 *
 * Two computation-pattern models are supported, exactly as in the
 * paper: `real` uses the measured instants; `idealLinear` spreads
 * them uniformly over the adjacent computation region (the
 * sequential-production assumption of Sancho et al.). Mechanism masks
 * allow studying the sender-side and receiver-side halves of the
 * mechanism separately.
 */

#ifndef OVLSIM_CORE_TRANSFORM_HH
#define OVLSIM_CORE_TRANSFORM_HH

#include <cstddef>
#include <string>

#include "trace/overlap_info.hh"
#include "trace/trace.hh"

namespace ovlsim::core {

/** Which computation pattern drives the chunk injection points. */
enum class PatternModel : std::uint8_t {
    /** Measured production/consumption instants (real pattern). */
    real,
    /** Uniform (sequential) production/consumption: the ideal
     * pattern assumed by prior analytical work. */
    idealLinear,
};

/** Which halves of the overlapping mechanism are enabled. */
enum class Mechanism : std::uint8_t {
    /** Chunks leave at production time; receiver waits at the
     * original receive point. */
    sendSide,
    /** Chunks leave at the original send point; receiver defers each
     * chunk's wait to its consumption point. */
    recvSide,
    /** Full mechanism: both halves. */
    both,
};

const char *patternModelName(PatternModel pattern);
const char *mechanismName(Mechanism mechanism);

/** Tunables of the transformation. */
struct TransformConfig
{
    PatternModel pattern = PatternModel::real;
    Mechanism mechanism = Mechanism::both;

    /** Target number of chunks per message. */
    std::size_t chunks = 16;

    /** Chunks are never smaller than this (small messages get fewer
     * chunks, down to a single one). */
    Bytes minChunkBytes = 1024;

    /** Chunk transfers draw tags from this base upward; application
     * tags must stay below it. */
    Tag chunkTagBase = 1 << 20;

    /** Human-readable variant label derived from the settings. */
    std::string label() const;
};

/** Transformation outcome. */
struct TransformResult
{
    /** The overlapped "potential" trace. */
    trace::TraceSet traces;
    /** Messages that were split (had overlap metadata). */
    std::size_t chunkedMessages = 0;
    /** Total chunk transfers emitted. */
    std::size_t totalChunks = 0;
};

/**
 * Build the overlapped trace for one original trace set.
 *
 * Messages without overlap metadata (e.g. native non-blocking
 * transfers) are replayed verbatim; collectives are always left
 * untouched — the mechanism addresses point-to-point transfers.
 *
 * @param original the non-overlapped trace (linked message ids)
 * @param overlap per-message production/consumption profiles
 * @param config pattern, mechanism and chunking settings
 */
TransformResult
buildOverlappedTrace(const trace::TraceSet &original,
                     const trace::OverlapSet &overlap,
                     const TransformConfig &config);

/** Number of chunks a message of `bytes` bytes is split into. */
std::size_t chunkCountFor(Bytes bytes,
                          const TransformConfig &config);

} // namespace ovlsim::core

#endif // OVLSIM_CORE_TRANSFORM_HH
