#include "study.hh"

#include "obs/stats.hh"
#include "util/logging.hh"

namespace ovlsim::core {

OverlapStudy::OverlapStudy(tracer::TraceBundle bundle)
    : bundle_(std::move(bundle))
{}

OverlapStudy
OverlapStudy::fromProgram(int ranks, const vm::RankProgram &program,
                          const tracer::TracerConfig &config)
{
    return OverlapStudy(
        tracer::traceApplication(ranks, program, config));
}

const OverlapStudy::Variant &
OverlapStudy::variantFor(const TransformConfig &config)
{
    const std::string key = config.label();
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
            obs::studyCache().recordHit();
            return it->second;
        }
    }
    obs::studyCache().recordMiss();
    // Build and lower outside the lock so concurrent callers
    // constructing *different* variants don't serialize; a
    // same-variant race costs one redundant build (emplace keeps
    // the first). Entries are never removed, so both the trace
    // reference and the shared program stay valid for the study's
    // lifetime.
    auto result = buildOverlappedTrace(bundle_.traces,
                                       bundle_.overlap, config);
    Variant variant;
    variant.program = sim::compileShared(result.traces);
    variant.traces = std::move(result.traces);
    std::lock_guard<std::mutex> lock(cacheMutex_);
    const auto [it, inserted] =
        cache_.emplace(key, std::move(variant));
    if (inserted)
        obs::studyCache().recordInsert(
            it->second.program->memoryBytes());
    return it->second;
}

const trace::TraceSet &
OverlapStudy::overlappedTrace(const TransformConfig &config)
{
    return variantFor(config).traces;
}

std::shared_ptr<const sim::ReplayProgram>
OverlapStudy::originalProgram() const
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        if (originalProgram_ != nullptr) {
            obs::studyCache().recordHit();
            return originalProgram_;
        }
    }
    obs::studyCache().recordMiss();
    auto program = sim::compileShared(bundle_.traces);
    std::lock_guard<std::mutex> lock(cacheMutex_);
    if (originalProgram_ == nullptr) {
        originalProgram_ = std::move(program);
        obs::studyCache().recordInsert(
            originalProgram_->memoryBytes());
    }
    return originalProgram_;
}

std::shared_ptr<const sim::ReplayProgram>
OverlapStudy::overlappedProgram(const TransformConfig &config)
{
    return variantFor(config).program;
}

sim::SimResult
OverlapStudy::simulateOriginal(
    const sim::PlatformConfig &platform) const
{
    return sim::simulate(*originalProgram(), platform);
}

sim::SimResult
OverlapStudy::simulateOverlapped(const TransformConfig &config,
                                 const sim::PlatformConfig &platform)
{
    return sim::simulate(*overlappedProgram(config), platform);
}

double
OverlapStudy::speedup(const TransformConfig &config,
                      const sim::PlatformConfig &platform)
{
    const auto original = simulateOriginal(platform);
    const auto overlapped = simulateOverlapped(config, platform);
    ovlAssert(overlapped.totalTime.ns() > 0,
              "speedup: degenerate overlapped time");
    return static_cast<double>(original.totalTime.ns()) /
        static_cast<double>(overlapped.totalTime.ns());
}

} // namespace ovlsim::core
