#include "study.hh"

#include "util/logging.hh"

namespace ovlsim::core {

OverlapStudy::OverlapStudy(tracer::TraceBundle bundle)
    : bundle_(std::move(bundle))
{}

OverlapStudy
OverlapStudy::fromProgram(int ranks, const vm::RankProgram &program,
                          const tracer::TracerConfig &config)
{
    return OverlapStudy(
        tracer::traceApplication(ranks, program, config));
}

const trace::TraceSet &
OverlapStudy::overlappedTrace(const TransformConfig &config)
{
    const std::string key = config.label();
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        const auto it = cache_.find(key);
        if (it != cache_.end())
            return it->second;
    }
    // Build outside the lock so concurrent callers constructing
    // *different* variants don't serialize; a same-variant race
    // costs one redundant build (emplace keeps the first).
    auto result = buildOverlappedTrace(bundle_.traces,
                                       bundle_.overlap, config);
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return cache_.emplace(key, std::move(result.traces))
        .first->second;
}

sim::SimResult
OverlapStudy::simulateOriginal(
    const sim::PlatformConfig &platform) const
{
    return sim::simulate(bundle_.traces, platform);
}

sim::SimResult
OverlapStudy::simulateOverlapped(const TransformConfig &config,
                                 const sim::PlatformConfig &platform)
{
    return sim::simulate(overlappedTrace(config), platform);
}

double
OverlapStudy::speedup(const TransformConfig &config,
                      const sim::PlatformConfig &platform)
{
    const auto original = simulateOriginal(platform);
    const auto overlapped = simulateOverlapped(config, platform);
    ovlAssert(overlapped.totalTime.ns() > 0,
              "speedup: degenerate overlapped time");
    return static_cast<double>(original.totalTime.ns()) /
        static_cast<double>(overlapped.totalTime.ns());
}

} // namespace ovlsim::core
