/**
 * @file
 * Static overlap-potential analysis of a traced run.
 *
 * Before any simulation, the production/consumption profiles already
 * reveal *why* an application can or cannot profit from automatic
 * overlap: how long before the send its data was ready (production
 * slack) and how long after the receive its data is first needed
 * (consumption slack), relative to the adjacent computation windows.
 * This is the "new insight into the mechanism and potential of
 * overlap" the paper's environment provides beyond a single speedup
 * number.
 */

#ifndef OVLSIM_CORE_POTENTIAL_HH
#define OVLSIM_CORE_POTENTIAL_HH

#include <string>

#include "trace/overlap_info.hh"
#include "util/stats.hh"

namespace ovlsim::core {

/** Slack measurements of one message, in instructions. */
struct MessagePotential
{
    trace::MessageId id = trace::invalidMessageId;
    Bytes bytes = 0;
    /** Send-side window: previous sync point to the send. */
    Instr productionWindow = 0;
    /** Instructions between mean block production and the send. */
    double productionSlack = 0.0;
    /** Receive-side window: the receive to the next sync point. */
    Instr consumptionWindow = 0;
    /** Instructions between the receive and mean first use. */
    double consumptionSlack = 0.0;

    /** Fraction of the send window usable for early injection. */
    double productionSlackFraction() const;

    /** Fraction of the recv window usable for deferred waits. */
    double consumptionSlackFraction() const;
};

/** Aggregated potential over all messages of a run. */
struct PotentialReport
{
    std::vector<MessagePotential> messages;
    /** Distribution of production slack fractions, [0, 1]. */
    OnlineStats productionSlack;
    /** Distribution of consumption slack fractions, [0, 1]. */
    OnlineStats consumptionSlack;

    /** Human-readable summary with slack histograms. */
    std::string toString() const;
};

/**
 * Analyze the measured profiles of a traced run.
 *
 * A run dominated by pack/unpack patterns reports slack fractions
 * near zero on both sides — the paper's "real patterns make the
 * potential negligible" — while a run producing and consuming data
 * progressively reports fractions approaching one.
 */
PotentialReport
analyzePotential(const trace::OverlapSet &overlap);

} // namespace ovlsim::core

#endif // OVLSIM_CORE_POTENTIAL_HH
