/**
 * @file
 * Quantitative analyses over original vs. overlapped executions.
 *
 * These functions implement the paper's three result families:
 * bandwidth sweeps comparing the non-overlapped execution against the
 * overlapped variants (R1), speedup at the "intermediate" bandwidth
 * where communication time is comparable to computation time (R2),
 * and the iso-performance bandwidth-relaxation analysis showing how
 * much less bandwidth the overlapped execution needs to match the
 * original's performance at high bandwidth (R3).
 */

#ifndef OVLSIM_CORE_ANALYSIS_HH
#define OVLSIM_CORE_ANALYSIS_HH

#include <string>
#include <vector>

#include "core/transform.hh"
#include "gen/gen.hh"
#include "net/topology.hh"
#include "obs/progress.hh"
#include "obs/stats.hh"
#include "scen/scenario.hh"
#include "sim/engine.hh"
#include "tracer/tracer.hh"
#include "util/thread_pool.hh"

namespace ovlsim::core {

/**
 * Opt-in campaign observability (src/obs/). Passed by pointer with
 * a null default, so instrumented sweeps cost nothing to callers
 * that don't ask: a null hook skips every branch, and the engine
 * counters are aggregated into the result structs either way.
 */
struct CampaignObs
{
    /** Ticked once per completed sweep point (or per (rate, seed)
     * job of a resilience campaign); null = no progress output. */
    obs::Progress *progress = nullptr;
    /** Record per-lane host-time spans (compile/point phases) for
     * Chrome-trace export via obs::writeChromeTrace. */
    bool recordSpans = false;
    /**
     * Filled on return when recordSpans: the drained lane spans.
     * Campaigns chaining several sweeps (topologySweep) append,
     * shifting each inner sweep past the previous one's end so the
     * merged track reads in wall order.
     */
    std::vector<ThreadPool::LaneSpan> spans;
};

/** A named overlapped variant to include in a comparison. */
struct VariantSpec
{
    std::string name;
    TransformConfig config;
};

/** The paper's two headline variants: real and ideal patterns, full
 * mechanism. */
std::vector<VariantSpec> standardVariants(std::size_t chunks = 16);

/** Log-spaced bandwidth grid in MB/s. */
std::vector<double> logBandwidthGrid(double lo_mbps, double hi_mbps,
                                     int points_per_decade = 2);

/** One bandwidth sample of a sweep. */
struct SweepPoint
{
    double bandwidthMBps = 0.0;
    SimTime originalTime;
    double originalCommFraction = 0.0;
    /** Parallel to SweepResult::variants. */
    std::vector<SimTime> variantTimes;
    /** Engine counters of this point's replays (original and every
     * variant), merged. */
    obs::EngineStats stats;

    /** Speedup of variant v over the original (1.0 = equal). */
    double speedup(std::size_t v) const;
};

/** Bandwidth sweep outcome. */
struct SweepResult
{
    std::vector<VariantSpec> variants;
    std::vector<SweepPoint> points;
    /** Point stats folded over the whole sweep. */
    obs::EngineStats stats;
};

/**
 * Simulate the original and every variant across a bandwidth grid.
 * All other platform parameters are taken from `base`.
 *
 * The original and every overlapped variant are lowered once into
 * shared compiled replay programs (sim/program.hh); all sweep points
 * replay from them, so per-point cost is pure engine time and the
 * campaign never holds more than one packed program per variant.
 *
 * With `threads` > 1 the variant construction/lowering and the sweep
 * points are fanned over a fixed thread pool, one ReplaySession per
 * worker (`threads` <= 0 means all hardware cores). Points are
 * independent replays and every point writes its own slot, so the
 * result is bit-identical to the sequential path at any thread
 * count.
 */
SweepResult bandwidthSweep(const tracer::TraceBundle &bundle,
                           const sim::PlatformConfig &base,
                           const std::vector<double> &bandwidths,
                           const std::vector<VariantSpec> &variants,
                           int threads = 1,
                           CampaignObs *cobs = nullptr);

/** One rank-count sample of a scaling sweep. */
struct ScalingPoint
{
    int ranks = 0;
    /** Point-to-point payload bytes of the generated workload. */
    Bytes sentBytes = 0;
    /** Point-to-point message count of the generated workload. */
    std::size_t messages = 0;
    SimTime originalTime;
    double originalCommFraction = 0.0;
    /** Parallel to ScalingResult::variants. */
    std::vector<SimTime> variantTimes;
    /** Engine counters of this point's replays, merged. */
    obs::EngineStats stats;

    /** Speedup of variant v over the original (1.0 = equal). */
    double speedup(std::size_t v) const;
};

/** Scaling sweep outcome. */
struct ScalingResult
{
    std::vector<VariantSpec> variants;
    std::vector<ScalingPoint> points;
    /** Point stats folded over the whole sweep. */
    obs::EngineStats stats;
};

/**
 * Run one synthetic workload (src/gen/) across a rank-count grid:
 * for every grid point the workload is re-targeted at that rank
 * count (gen::withRankCount), generated, and replayed on `base` as
 * the original and every overlapped variant. This is the question
 * recorded traces cannot answer — how the overlap benefit moves as
 * the machine grows — and the reason the generators exist.
 *
 * Each point generates its own trace set, so points fan out over
 * the thread pool whole (generation + transform + compile +
 * replay), one ReplaySession per lane, every point writing only
 * its own slot. Generation is a pure function of (workload, seed)
 * through the counter-based RNG, so the result is bit-identical to
 * the sequential path at any thread count (`threads` as in
 * bandwidthSweep).
 */
ScalingResult scalingSweep(const gen::WorkloadConfig &workload,
                           std::uint64_t seed,
                           const sim::PlatformConfig &base,
                           const std::vector<int> &rank_grid,
                           const std::vector<VariantSpec> &variants,
                           int threads = 1,
                           CampaignObs *cobs = nullptr);

/** A named interconnect to include in a topology campaign. */
struct TopologySpec
{
    std::string name;
    net::TopologyConfig topology;
};

/**
 * The standard topology set campaigns sweep: the flat bus baseline,
 * a full-bisection fat tree, a 2:1-per-level tapered fat tree, a
 * wrapped 2-D torus and a dragonfly (the latter two auto-sized to
 * the node count at route compilation).
 */
std::vector<TopologySpec> standardTopologies();

/** One topology's outcome inside a topology campaign. */
struct TopologySweepResult
{
    std::vector<TopologySpec> topologies;
    /** Parallel to `topologies`: one full R1-style sweep each. */
    std::vector<SweepResult> sweeps;
};

/**
 * The R1 bandwidth sweep repeated per interconnect: for every
 * topology, replay the original and every overlapped variant across
 * the bandwidth grid with that topology installed in the platform
 * (`base`'s other parameters are kept). Each per-topology sweep
 * runs on the parallel sweep engine (`threads` as in
 * bandwidthSweep) and the result is bit-identical to the
 * sequential path at any thread count.
 */
TopologySweepResult
topologySweep(const tracer::TraceBundle &bundle,
              const sim::PlatformConfig &base,
              const std::vector<double> &bandwidths,
              const std::vector<VariantSpec> &variants,
              const std::vector<TopologySpec> &topologies,
              int threads = 1, CampaignObs *cobs = nullptr);

/** A named dynamic scenario to include in a degradation campaign. */
struct ScenarioSpec
{
    std::string name;
    scen::ScenarioConfig scenario;
};

/** One scenario's outcome inside a degradation campaign. */
struct DegradedSweepResult
{
    std::vector<ScenarioSpec> scenarios;
    /** Parallel to `scenarios`: one full R1-style sweep each. */
    std::vector<SweepResult> sweeps;
};

/**
 * The R1 bandwidth sweep repeated per dynamic scenario: for every
 * scenario (src/scen/ — link degradations, stalls, reroutes,
 * background traffic), replay the original and every overlapped
 * variant across the bandwidth grid with the scenario installed in
 * the platform (`base`'s other parameters, including its topology,
 * are kept). The gap against a no-scenario sweep is the resilience
 * question: how much of the overlap benefit survives a degraded
 * machine. Scenarios containing fail-stop events terminate their
 * sweep by design; campaigns use degrade/stall/reroute/background
 * events. Each per-scenario sweep runs on the parallel sweep engine
 * (`threads` as in bandwidthSweep) and the result is bit-identical
 * to the sequential path at any thread count.
 */
DegradedSweepResult
degradedSweep(const tracer::TraceBundle &bundle,
              const sim::PlatformConfig &base,
              const std::vector<double> &bandwidths,
              const std::vector<VariantSpec> &variants,
              const std::vector<ScenarioSpec> &scenarios,
              int threads = 1, CampaignObs *cobs = nullptr);

/** Aggregates of one (failure rate x variant) campaign cell. */
struct ResilienceCell
{
    /**
     * Completion time per seed, parallel to the campaign's seed
     * indices; SimTime::max() marks a failed run (a fail-stop with
     * checkpointing disabled, or a restart budget exhausted).
     */
    std::vector<SimTime> seedTimes;
    /**
     * Structured why-it-died reports, parallel to seedTimes: the
     * FailureDiagnosis of every failed seed (which event fired,
     * when, and the ranks left unfinished), default-constructed
     * (empty `event`) for seeds that completed. Campaign tables
     * print these next to failedFraction instead of discarding the
     * forensic detail the engine already assembled.
     */
    std::vector<scen::FailureDiagnosis> seedDiagnoses;
    /** Mean over surviving seeds (integer-ns mean; zero when every
     * seed failed). */
    SimTime meanTime;
    /** Nearest-rank 95th percentile over surviving seeds. */
    SimTime p95Time;
    /** Fraction of seeds whose replay never finished. */
    double failedFraction = 0.0;
};

/** One failure-rate sample of a resilience campaign. */
struct ResiliencePoint
{
    /** Per-node mean time between fail-stop faults (us). */
    double mtbfUs = 0.0;
    /** Cell 0 is the original; then parallel to variants. */
    std::vector<ResilienceCell> cells;
};

/** Resilience campaign outcome. */
struct ResilienceResult
{
    std::vector<VariantSpec> variants;
    std::uint32_t seedCount = 0;
    /** Fault horizon applied to every generated scenario. */
    SimTime horizon;
    std::vector<ResiliencePoint> points;
    /** Engine counters of every replay the campaign ran, merged
     * (nominal pre-pass included). */
    obs::EngineStats stats;
};

/**
 * The resilience campaign: replay the original and every overlapped
 * variant across a failure-rate grid x `seed_count` seeds, under
 * `base`'s checkpoint/restart cost model (src/res/). For each grid
 * point one per-node fail-stop exponential process at that MTBF is
 * expanded (res::generateScenario) per seed — the same generated
 * scenario is applied to the original and every variant of the
 * (rate, seed) row, so cells compare under identical fault
 * sequences. A failure-free pre-pass sets the fault horizon at 4x
 * the slowest nominal run, so heavily reworked replays finish on a
 * fault-free tail instead of diverging; runs that still die (no
 * checkpointing, or restart budget exhausted) are reported as data
 * in failedFraction rather than thrown.
 *
 * Deterministic by construction: scenario expansion is a pure
 * function of (seed, grid index, seed index) through the
 * counter-based RNG, every (rate, seed) job writes only its own
 * slots, and the aggregates use integer arithmetic — the result is
 * bit-identical to the sequential path at any thread count
 * (`threads` as in bandwidthSweep).
 */
ResilienceResult
resilienceSweep(const tracer::TraceBundle &bundle,
                const sim::PlatformConfig &base,
                const std::vector<double> &mtbf_grid_us,
                const std::vector<VariantSpec> &variants,
                std::uint32_t seed_count, std::uint64_t seed = 1,
                int threads = 1, CampaignObs *cobs = nullptr);

/**
 * One checkpointing protocol to compare in protocolSweep(): a named
 * cost model laid over the swept checkpoint interval. A protocol
 * with globalIntervalFactor == 0 is classic single-level
 * checkpoint/restart; a positive factor enables the two-level
 * hierarchy with the global interval riding at `factor x` the swept
 * local interval (e.g. factor 4 = every fourth local checkpoint is
 * also flushed to the global store).
 */
struct CheckpointProtocol
{
    std::string name;
    /** Per-local-checkpoint freeze cost (platform
     * checkpoint_cost_us). */
    double checkpointCostUs = 0.0;
    /** Rollback-to-local-snapshot cost (restart_cost_us). */
    double restartCostUs = 0.0;
    /** Global interval as a multiple of the swept local interval;
     * 0 disables the second level. */
    double globalIntervalFactor = 0.0;
    /** Extra freeze cost of a global checkpoint
     * (checkpoint_global_cost_us). */
    double checkpointGlobalCostUs = 0.0;
    /** Rollback-to-global-snapshot cost (restart_global_cost_us). */
    double restartGlobalCostUs = 0.0;
};

/** One (protocol x interval) cell of a protocol sweep. */
struct ProtocolCell
{
    /** Swept local checkpoint interval (us). */
    double intervalUs = 0.0;
    ResilienceCell cell;
};

/** One protocol's row across the interval grid. */
struct ProtocolSweepRow
{
    CheckpointProtocol protocol;
    /** Parallel to the interval grid. */
    std::vector<ProtocolCell> cells;
    /** Interval minimising mean completion time over surviving
     * seeds (argmin over the grid; cells where every seed died are
     * skipped). 0 when no cell survived. */
    double bestIntervalUs = 0.0;
    /** res::dalyInterval(M, checkpointCostUs) with M the *system*
     * MTBF — failure rates of the per-node processes and the
     * machine-wide one summed — which is the mean Daly's formula is
     * stated over. The analytic first-order optimum to print next
     * to the swept one. */
    double dalyIntervalUs = 0.0;
};

/** Protocol-comparison campaign outcome. */
struct ProtocolSweepResult
{
    /** Per-node fail-stop MTBF driving every cell (us). */
    double mtbfUs = 0.0;
    /** Machine-wide fail-stop MTBF (0 = no machine-wide process). */
    double machineMtbfUs = 0.0;
    std::uint32_t seedCount = 0;
    /** Fault horizon applied to every generated scenario. */
    SimTime horizon;
    /** Swept local checkpoint intervals (us). */
    std::vector<double> intervalGridUs;
    std::vector<ProtocolSweepRow> rows;
};

/**
 * The protocol-comparison campaign: replay the original program
 * under every (protocol, checkpoint interval, seed) combination at
 * a fixed failure rate and report mean completion time per cell,
 * the swept optimal interval per protocol, and Daly's analytic
 * prediction next to it. Faults are one per-node fail-stop
 * exponential process at `mtbf_us` per node, plus — when
 * `machine_mtbf_us` > 0 — one machine-wide (`process all`)
 * fail-stop process, which two-level protocols recover from their
 * global snapshot and single-level protocols from their local one,
 * so the hierarchy's cost/benefit shows up as data. The same
 * generated scenario is applied to every (protocol, interval) cell
 * of a seed, so protocols compare under identical fault sequences.
 * A failure-free pre-pass sets the horizon at 4x the nominal run,
 * as in resilienceSweep, and cells that die (budget exhausted) are
 * reported in failedFraction/seedDiagnoses rather than thrown.
 *
 * Deterministic by construction, bit-identical at any thread count
 * (`threads` as in bandwidthSweep).
 */
ProtocolSweepResult
protocolSweep(const tracer::TraceBundle &bundle,
              const sim::PlatformConfig &base, double mtbf_us,
              const std::vector<double> &interval_grid_us,
              const std::vector<CheckpointProtocol> &protocols,
              std::uint32_t seed_count, std::uint64_t seed = 1,
              double machine_mtbf_us = 0.0, int threads = 1);

/** One topology's analytic-vs-algorithmic outcome. */
struct CollectiveSweepResult
{
    std::vector<TopologySpec> topologies;
    /** Parallel to `topologies`: analytic-collective sweeps. */
    std::vector<SweepResult> analytic;
    /** Parallel to `topologies`: algorithmic-collective sweeps. */
    std::vector<SweepResult> algorithmic;
};

/**
 * The R1 bandwidth sweep repeated per interconnect under both
 * collective models: for every topology, the original and every
 * overlapped variant replay across the bandwidth grid twice — once
 * with the analytic closed-form collective costs (the classic
 * Dimemas path) and once with collectives lowered into
 * point-to-point schedules that contend on the fabric's links
 * (src/coll/). The gap between the paired sweeps is the topology
 * effect the analytic model cannot see — the interesting read for
 * collective-heavy applications (nas-cg, alya). Each inner sweep
 * runs on the parallel sweep engine (`threads` as in
 * bandwidthSweep) and the result is bit-identical to the
 * sequential path at any thread count.
 */
CollectiveSweepResult
collectiveSweep(const tracer::TraceBundle &bundle,
                const sim::PlatformConfig &base,
                const std::vector<double> &bandwidths,
                const std::vector<VariantSpec> &variants,
                const std::vector<TopologySpec> &topologies,
                int threads = 1);

/**
 * Find the "intermediate" bandwidth: the point where the original
 * execution spends about as much time blocked on communication as it
 * spends computing (paper Sec. III: "where time spent in
 * communication is comparable to time spent in computation").
 * Bisection on a log scale over [lo, hi]. The TraceSet overload
 * compiles once on entry; pass a pre-compiled program to share the
 * lowering with other analyses of the same trace.
 */
double findIntermediateBandwidth(const trace::TraceSet &original,
                                 const sim::PlatformConfig &base,
                                 double lo_mbps = 0.25,
                                 double hi_mbps = 1 << 20,
                                 int iterations = 40);

double findIntermediateBandwidth(const sim::ReplayProgram &original,
                                 const sim::PlatformConfig &base,
                                 double lo_mbps = 0.25,
                                 double hi_mbps = 1 << 20,
                                 int iterations = 40);

/**
 * Smallest bandwidth at which replaying `traces` completes within
 * `target`. Bisection on a log scale; returns `hi_mbps` when even
 * the top of the range misses the target. The TraceSet overload
 * compiles once on entry.
 */
double minBandwidthForTime(const trace::TraceSet &traces,
                           const sim::PlatformConfig &base,
                           SimTime target, double lo_mbps,
                           double hi_mbps, int iterations = 48);

double minBandwidthForTime(const sim::ReplayProgram &program,
                           const sim::PlatformConfig &base,
                           SimTime target, double lo_mbps,
                           double hi_mbps, int iterations = 48);

/** Result of the bandwidth-relaxation (iso-performance) analysis. */
struct IsoPerformanceResult
{
    /** High reference bandwidth (MB/s). */
    double referenceBandwidth = 0.0;
    /** Original execution time at the reference bandwidth. */
    SimTime originalTime;
    /** Tolerated slowdown applied to the target (e.g. 0.05). */
    double tolerance = 0.0;
    /** Min bandwidth for the *original* to stay within target. */
    double originalRequiredBandwidth = 0.0;
    /** Min bandwidth for the *overlapped* to stay within target. */
    double overlappedRequiredBandwidth = 0.0;

    /** How much less bandwidth the overlapped execution needs. */
    double
    reductionFactor() const
    {
        return overlappedRequiredBandwidth > 0.0
                   ? originalRequiredBandwidth /
                       overlappedRequiredBandwidth
                   : 0.0;
    }
};

/**
 * The paper's network-relaxation experiment: measure the original's
 * performance at a high reference bandwidth, then find the minimal
 * bandwidth at which (a) the original and (b) the overlapped variant
 * still deliver that performance within `tolerance`.
 *
 * With `threads` > 1 the two bisections — original and overlapped
 * (including the overlapped-trace construction) — run concurrently;
 * they are independent searches, so the result is bit-identical to
 * the sequential path.
 */
IsoPerformanceResult
isoPerformance(const tracer::TraceBundle &bundle,
               const sim::PlatformConfig &base,
               const TransformConfig &variant,
               double reference_mbps, double tolerance = 0.05,
               double search_lo_mbps = 1e-3, int threads = 1);

} // namespace ovlsim::core

#endif // OVLSIM_CORE_ANALYSIS_HH
