#include "analysis.hh"

#include <algorithm>
#include <cmath>

#include "res/fault_model.hh"
#include "util/counter_rng.hh"
#include "util/logging.hh"
#include "util/strings.hh"
#include "util/thread_pool.hh"

namespace ovlsim::core {

namespace {

/**
 * Drain `pool`'s recorded spans into the hook, shifting them past
 * the latest span already collected: campaigns chaining sweeps
 * (topologySweep) run their inner pools sequentially, so the shift
 * keeps the merged host track in wall order even though every pool
 * restarts its span clock at zero.
 */
void
collectSpans(CampaignObs *cobs, ThreadPool &pool)
{
    if (cobs == nullptr || !cobs->recordSpans)
        return;
    std::uint64_t base = 0;
    for (const ThreadPool::LaneSpan &span : cobs->spans) {
        if (span.endNs > base)
            base = span.endNs;
    }
    for (ThreadPool::LaneSpan &span : pool.takeSpans()) {
        span.beginNs += base;
        span.endNs += base;
        cobs->spans.push_back(std::move(span));
    }
}

void
tickProgress(CampaignObs *cobs)
{
    if (cobs != nullptr && cobs->progress != nullptr)
        cobs->progress->tick();
}

} // namespace

std::vector<VariantSpec>
standardVariants(std::size_t chunks)
{
    std::vector<VariantSpec> variants;
    TransformConfig real;
    real.pattern = PatternModel::real;
    real.mechanism = Mechanism::both;
    real.chunks = chunks;
    variants.push_back(VariantSpec{"overlap-real", real});

    TransformConfig ideal = real;
    ideal.pattern = PatternModel::idealLinear;
    variants.push_back(VariantSpec{"overlap-ideal", ideal});
    return variants;
}

std::vector<double>
logBandwidthGrid(double lo_mbps, double hi_mbps,
                 int points_per_decade)
{
    ovlAssert(lo_mbps > 0.0 && hi_mbps > lo_mbps,
              "logBandwidthGrid: bad range");
    ovlAssert(points_per_decade > 0,
              "logBandwidthGrid: need at least one point/decade");
    std::vector<double> grid;
    const double step =
        std::pow(10.0, 1.0 / points_per_decade);
    for (double b = lo_mbps; b < hi_mbps * (1.0 + 1e-9); b *= step)
        grid.push_back(b);
    if (grid.empty() || grid.back() < hi_mbps * (1.0 - 1e-9))
        grid.push_back(hi_mbps);
    return grid;
}

double
SweepPoint::speedup(std::size_t v) const
{
    ovlAssert(v < variantTimes.size(),
              "SweepPoint::speedup: bad variant index");
    const auto t = variantTimes[v].ns();
    if (t <= 0)
        return 0.0;
    return static_cast<double>(originalTime.ns()) /
        static_cast<double>(t);
}

SweepResult
bandwidthSweep(const tracer::TraceBundle &bundle,
               const sim::PlatformConfig &base,
               const std::vector<double> &bandwidths,
               const std::vector<VariantSpec> &variants,
               int threads, CampaignObs *cobs)
{
    SweepResult result;
    result.variants = variants;

    // Lanes beyond the widest phase (usually the per-point fan-out)
    // would only idle; clamp so tiny sweeps don't pay for a
    // hardware-sized pool.
    const std::size_t widest =
        bandwidths.size() > variants.size() ? bandwidths.size()
                                            : variants.size();
    int lanes = ThreadPool::resolveThreads(threads);
    if (widest > 0 && static_cast<std::size_t>(lanes) > widest)
        lanes = static_cast<int>(widest);
    ThreadPool pool(lanes);
    if (cobs != nullptr && cobs->recordSpans)
        pool.enableSpans();

    // Compile the original and every overlapped variant once into
    // shared immutable replay programs; every sweep point replays
    // from them. The variant TraceSets are dropped as soon as they
    // are compiled, so the campaign's footprint is one packed
    // program per variant instead of one fat record vector per
    // variant, and no lane ever re-lowers a trace. Slot 0 is the
    // original; the constructions are independent, so they fan out
    // too (they dominate setup for many-chunk variants).
    std::vector<std::shared_ptr<const sim::ReplayProgram>> programs(
        variants.size() + 1);
    pool.parallelFor(
        programs.size(), [&](std::size_t v, int lane) {
            pool.spanBegin(
                lane,
                v == 0 ? "compile original"
                       : "compile " + variants[v - 1].name);
            if (v == 0) {
                programs[0] = sim::compileShared(bundle.traces);
            } else {
                const auto built = buildOverlappedTrace(
                    bundle.traces, bundle.overlap,
                    variants[v - 1].config);
                programs[v] = sim::compileShared(built.traces);
            }
            pool.spanEnd(lane);
        });

    // One replay session per lane: replays reuse the engine arenas
    // across points, and point i writes only slot i, so the sweep is
    // bit-identical to the sequential loop at any thread count.
    std::vector<sim::ReplaySession> sessions(
        static_cast<std::size_t>(pool.size()));
    result.points.resize(bandwidths.size());
    pool.parallelFor(
        bandwidths.size(), [&](std::size_t i, int lane) {
            pool.spanBegin(lane, strformat("point bw=%.4g",
                                           bandwidths[i]));
            auto &session =
                sessions[static_cast<std::size_t>(lane)];
            sim::PlatformConfig platform = base;
            platform.bandwidthMBps = bandwidths[i];

            SweepPoint &point = result.points[i];
            point.bandwidthMBps = bandwidths[i];
            const auto original =
                session.run(*programs[0], platform);
            point.originalTime = original.totalTime;
            point.originalCommFraction = original.commFraction();
            point.stats = original.stats;
            point.variantTimes.reserve(variants.size());
            for (std::size_t v = 1; v < programs.size(); ++v) {
                const auto run =
                    session.run(*programs[v], platform);
                point.variantTimes.push_back(run.totalTime);
                point.stats.merge(run.stats);
            }
            pool.spanEnd(lane);
            tickProgress(cobs);
        });
    // Sequential fold (merge is commutative anyway), so the
    // aggregate is bit-identical at any thread count.
    for (const SweepPoint &point : result.points)
        result.stats.merge(point.stats);
    collectSpans(cobs, pool);
    return result;
}

double
ScalingPoint::speedup(std::size_t v) const
{
    ovlAssert(v < variantTimes.size(),
              "ScalingPoint::speedup: bad variant index");
    const auto t = variantTimes[v].ns();
    if (t <= 0)
        return 0.0;
    return static_cast<double>(originalTime.ns()) /
        static_cast<double>(t);
}

ScalingResult
scalingSweep(const gen::WorkloadConfig &workload,
             std::uint64_t seed, const sim::PlatformConfig &base,
             const std::vector<int> &rank_grid,
             const std::vector<VariantSpec> &variants, int threads,
             CampaignObs *cobs)
{
    ScalingResult result;
    result.variants = variants;

    int lanes = ThreadPool::resolveThreads(threads);
    if (!rank_grid.empty() &&
        static_cast<std::size_t>(lanes) > rank_grid.size())
        lanes = static_cast<int>(rank_grid.size());
    ThreadPool pool(lanes);
    if (cobs != nullptr && cobs->recordSpans)
        pool.enableSpans();

    // Unlike the bandwidth sweep there is no shared compiled
    // program: every point is a different trace (its own rank
    // count), so the whole pipeline — generate, transform, compile,
    // replay — fans out per point. Generation is a pure function of
    // (workload, seed), and point i writes only slot i, so the
    // sweep is bit-identical to the sequential loop at any thread
    // count.
    std::vector<sim::ReplaySession> sessions(
        static_cast<std::size_t>(pool.size()));
    result.points.resize(rank_grid.size());
    pool.parallelFor(
        rank_grid.size(), [&](std::size_t i, int lane) {
            pool.spanBegin(lane, strformat("point ranks=%d",
                                           rank_grid[i]));
            auto &session =
                sessions[static_cast<std::size_t>(lane)];
            const auto config =
                gen::withRankCount(workload, rank_grid[i]);
            const auto bundle =
                gen::generateWorkload(config, seed);

            ScalingPoint &point = result.points[i];
            point.ranks = rank_grid[i];
            point.sentBytes = bundle.traces.totalSentBytes();
            point.messages = bundle.traces.totalMessages();
            const auto original =
                session.run(bundle.traces, base);
            point.originalTime = original.totalTime;
            point.originalCommFraction = original.commFraction();
            point.stats = original.stats;
            point.variantTimes.reserve(variants.size());
            for (const auto &variant : variants) {
                const auto built = buildOverlappedTrace(
                    bundle.traces, bundle.overlap,
                    variant.config);
                const auto run =
                    session.run(built.traces, base);
                point.variantTimes.push_back(run.totalTime);
                point.stats.merge(run.stats);
            }
            pool.spanEnd(lane);
            tickProgress(cobs);
        });
    for (const ScalingPoint &point : result.points)
        result.stats.merge(point.stats);
    collectSpans(cobs, pool);
    return result;
}

std::vector<TopologySpec>
standardTopologies()
{
    using namespace net::topologies;
    return {
        {"flat-bus", flatBus()},
        {"fat-tree", fatTree(4)},
        {"fat-tree-taper2", taperedFatTree(4, 0.5)},
        {"torus-2d", torus2d()},
        {"dragonfly", dragonfly()},
    };
}

TopologySweepResult
topologySweep(const tracer::TraceBundle &bundle,
              const sim::PlatformConfig &base,
              const std::vector<double> &bandwidths,
              const std::vector<VariantSpec> &variants,
              const std::vector<TopologySpec> &topologies,
              int threads, CampaignObs *cobs)
{
    TopologySweepResult result;
    result.topologies = topologies;
    result.sweeps.reserve(topologies.size());
    // Topologies run one after another: each inner sweep already
    // fans its variant construction and grid points over the worker
    // pool, and sequential outer order keeps every sweep's lane
    // layout — and therefore the whole campaign — bit-identical to
    // a one-topology run.
    for (const auto &spec : topologies) {
        sim::PlatformConfig platform = base;
        platform.topology = spec.topology;
        platform.name = base.name + "/" + spec.name;
        result.sweeps.push_back(bandwidthSweep(
            bundle, platform, bandwidths, variants, threads,
            cobs));
    }
    return result;
}

DegradedSweepResult
degradedSweep(const tracer::TraceBundle &bundle,
              const sim::PlatformConfig &base,
              const std::vector<double> &bandwidths,
              const std::vector<VariantSpec> &variants,
              const std::vector<ScenarioSpec> &scenarios,
              int threads, CampaignObs *cobs)
{
    DegradedSweepResult result;
    result.scenarios = scenarios;
    result.sweeps.reserve(scenarios.size());
    // Sequential outer loop for the same reason as topologySweep:
    // the inner sweep owns the fan-out, and a fixed outer order
    // keeps the campaign bit-identical to one-scenario runs at any
    // thread count.
    for (const auto &spec : scenarios) {
        sim::PlatformConfig platform = base;
        platform.scenario = spec.scenario;
        platform.name = base.name + "/" + spec.name;
        result.sweeps.push_back(bandwidthSweep(
            bundle, platform, bandwidths, variants, threads,
            cobs));
    }
    return result;
}

namespace {

/** Fold one cell's per-seed outcomes into its aggregates. */
void
aggregateCell(ResilienceCell &cell)
{
    std::vector<SimTime> alive;
    alive.reserve(cell.seedTimes.size());
    for (const SimTime t : cell.seedTimes) {
        if (t != SimTime::max())
            alive.push_back(t);
    }
    cell.failedFraction =
        static_cast<double>(cell.seedTimes.size() - alive.size()) /
        static_cast<double>(cell.seedTimes.size());
    if (alive.empty()) {
        cell.meanTime = SimTime::zero();
        cell.p95Time = SimTime::zero();
        return;
    }
    // Integer arithmetic end to end (ns sums fit: 2^63 ns is ~292
    // years of simulated time) so the aggregates are bit-identical
    // across hosts and thread counts.
    std::int64_t sum = 0;
    for (const SimTime t : alive)
        sum += t.ns();
    cell.meanTime = SimTime::fromNs(
        sum / static_cast<std::int64_t>(alive.size()));
    std::sort(alive.begin(), alive.end());
    // Nearest-rank percentile: ceil(0.95 n) as (19n + 19) / 20.
    const std::size_t n = alive.size();
    const std::size_t rank = (19 * n + 19) / 20;
    cell.p95Time = alive[rank - 1];
}

} // namespace

ResilienceResult
resilienceSweep(const tracer::TraceBundle &bundle,
                const sim::PlatformConfig &base,
                const std::vector<double> &mtbf_grid_us,
                const std::vector<VariantSpec> &variants,
                std::uint32_t seed_count, std::uint64_t seed,
                int threads, CampaignObs *cobs)
{
    ovlAssert(seed_count > 0,
              "resilienceSweep: need at least one seed");
    for (const double mtbf : mtbf_grid_us) {
        ovlAssert(mtbf > 0.0,
                  "resilienceSweep: MTBF must be positive");
    }

    ResilienceResult result;
    result.variants = variants;
    result.seedCount = seed_count;

    const std::size_t jobs = mtbf_grid_us.size() * seed_count;
    int lanes = ThreadPool::resolveThreads(threads);
    if (jobs > 0 && static_cast<std::size_t>(lanes) > jobs)
        lanes = static_cast<int>(jobs);
    ThreadPool pool(lanes);
    if (cobs != nullptr && cobs->recordSpans)
        pool.enableSpans();

    // Programs compile once into shared immutable replay programs,
    // exactly like bandwidthSweep; every (rate, seed, variant) job
    // replays from them.
    std::vector<std::shared_ptr<const sim::ReplayProgram>> programs(
        variants.size() + 1);
    pool.parallelFor(
        programs.size(), [&](std::size_t v, int) {
            if (v == 0) {
                programs[0] = sim::compileShared(bundle.traces);
                return;
            }
            const auto built = buildOverlappedTrace(
                bundle.traces, bundle.overlap,
                variants[v - 1].config);
            programs[v] = sim::compileShared(built.traces);
        });

    // Failure-free pre-pass: nominal completion under the base
    // platform (checkpoint overhead included, faults excluded) sets
    // the fault horizon. Processes stop faulting at 4x the slowest
    // nominal run, so heavily reworked replays finish on a
    // fault-free tail instead of restarting forever.
    sim::PlatformConfig nominal = base;
    nominal.scenario = scen::ScenarioConfig{};
    nominal.faultModelFile.clear();
    std::vector<sim::ReplaySession> sessions(
        static_cast<std::size_t>(pool.size()));
    std::vector<SimTime> nominalTimes(programs.size());
    std::vector<obs::EngineStats> nominalStats(programs.size());
    pool.parallelFor(
        programs.size(), [&](std::size_t v, int lane) {
            const auto run =
                sessions[static_cast<std::size_t>(lane)].run(
                    *programs[v], nominal);
            nominalTimes[v] = run.totalTime;
            nominalStats[v] = run.stats;
        });
    SimTime slowest;
    for (const SimTime t : nominalTimes) {
        if (t > slowest)
            slowest = t;
    }
    result.horizon = slowest * 4;

    const int nodes = (programs[0]->ranks() + base.cpusPerNode - 1) /
        base.cpusPerNode;

    result.points.resize(mtbf_grid_us.size());
    for (std::size_t i = 0; i < mtbf_grid_us.size(); ++i) {
        ResiliencePoint &point = result.points[i];
        point.mtbfUs = mtbf_grid_us[i];
        point.cells.resize(programs.size());
        for (ResilienceCell &cell : point.cells) {
            cell.seedTimes.assign(seed_count, SimTime::max());
            cell.seedDiagnoses.assign(seed_count,
                                      scen::FailureDiagnosis{});
        }
    }

    // One (rate, seed) job per row: the generated scenario is
    // shared across the row's variants, so cells compare under
    // identical fault sequences. Every job writes only its own
    // seedTimes slots and the scenario expansion is a pure function
    // of (seed, i, s) through the counter RNG, so the sweep is
    // bit-identical to the sequential loop at any thread count.
    // Jobs of one grid point race on that point, so per-job stats
    // land in a private slot and fold sequentially below.
    std::vector<obs::EngineStats> jobStats(jobs);
    pool.parallelFor(jobs, [&](std::size_t job, int lane) {
        const std::size_t i = job / seed_count;
        const std::size_t s = job % seed_count;
        pool.spanBegin(lane,
                       strformat("job mtbf=%.4g seed=%zu",
                                 mtbf_grid_us[i], s));

        res::FaultModel model;
        model.processes.reserve(static_cast<std::size_t>(nodes));
        for (int n = 0; n < nodes; ++n) {
            res::FaultProcess proc;
            proc.target = scen::ScenTarget::node;
            proc.nodeA = n;
            proc.effect = res::FaultEffect::failStop;
            proc.mtbfUs = mtbf_grid_us[i];
            model.processes.push_back(std::move(proc));
        }
        const std::uint64_t row_seed =
            CounterRng(seed, static_cast<std::uint64_t>(i)).at(s);
        sim::PlatformConfig platform = nominal;
        platform.scenario =
            res::generateScenario(model, row_seed, result.horizon);

        auto &session = sessions[static_cast<std::size_t>(lane)];
        ResiliencePoint &point = result.points[i];
        for (std::size_t v = 0; v < programs.size(); ++v) {
            try {
                const auto run =
                    session.run(*programs[v], platform);
                point.cells[v].seedTimes[s] = run.totalTime;
                jobStats[job].merge(run.stats);
            } catch (const scen::FailureError &err) {
                // A dead run is campaign data, not an error: the
                // platform fails faster than this configuration
                // recovers. The slot keeps its max() sentinel and
                // the structured diagnosis (which event killed the
                // run, which ranks were left unfinished) rides
                // along for the campaign report.
                point.cells[v].seedDiagnoses[s] = err.diagnosis();
            }
        }
        pool.spanEnd(lane);
        tickProgress(cobs);
    });

    for (ResiliencePoint &point : result.points) {
        for (ResilienceCell &cell : point.cells)
            aggregateCell(cell);
    }
    for (const obs::EngineStats &stats : nominalStats)
        result.stats.merge(stats);
    for (const obs::EngineStats &stats : jobStats)
        result.stats.merge(stats);
    collectSpans(cobs, pool);
    return result;
}

ProtocolSweepResult
protocolSweep(const tracer::TraceBundle &bundle,
              const sim::PlatformConfig &base, double mtbf_us,
              const std::vector<double> &interval_grid_us,
              const std::vector<CheckpointProtocol> &protocols,
              std::uint32_t seed_count, std::uint64_t seed,
              double machine_mtbf_us, int threads)
{
    ovlAssert(seed_count > 0,
              "protocolSweep: need at least one seed");
    ovlAssert(mtbf_us > 0.0,
              "protocolSweep: MTBF must be positive");
    ovlAssert(!protocols.empty(),
              "protocolSweep: need at least one protocol");
    ovlAssert(!interval_grid_us.empty(),
              "protocolSweep: need at least one interval");
    for (const double interval : interval_grid_us) {
        ovlAssert(interval > 0.0,
                  "protocolSweep: intervals must be positive");
    }

    ProtocolSweepResult result;
    result.mtbfUs = mtbf_us;
    result.machineMtbfUs = machine_mtbf_us;
    result.seedCount = seed_count;
    result.intervalGridUs = interval_grid_us;

    const std::size_t jobs =
        protocols.size() * interval_grid_us.size() * seed_count;
    int lanes = ThreadPool::resolveThreads(threads);
    if (static_cast<std::size_t>(lanes) > jobs)
        lanes = static_cast<int>(jobs);
    ThreadPool pool(lanes);

    // Protocols compare checkpointing cost models over one fixed
    // workload, so only the original program replays — overlap
    // variants are resilienceSweep's axis, not this sweep's.
    const auto program = sim::compileShared(bundle.traces);

    // Failure-free, checkpoint-free pre-pass sets the fault horizon
    // at 4x the nominal run, as in resilienceSweep. Checkpointing is
    // stripped too because the interval is this sweep's axis; the
    // 4x headroom dwarfs any protocol's freeze overhead.
    sim::PlatformConfig nominal = base;
    nominal.scenario = scen::ScenarioConfig{};
    nominal.faultModelFile.clear();
    nominal.checkpointIntervalUs = 0.0;
    nominal.checkpointCostUs = 0.0;
    nominal.restartCostUs = 0.0;
    nominal.checkpointGlobalIntervalUs = 0.0;
    nominal.checkpointGlobalCostUs = 0.0;
    nominal.restartGlobalCostUs = 0.0;
    std::vector<sim::ReplaySession> sessions(
        static_cast<std::size_t>(pool.size()));
    result.horizon =
        sessions[0].run(*program, nominal).totalTime * 4;

    const int nodes = (program->ranks() + base.cpusPerNode - 1) /
        base.cpusPerNode;

    // Daly's M is the machine's mean time between *any* failure:
    // independent exponential processes superpose, so the system
    // rate is the per-node rate times the node count plus the
    // machine-wide rate.
    double failure_rate = static_cast<double>(nodes) / mtbf_us;
    if (machine_mtbf_us > 0.0)
        failure_rate += 1.0 / machine_mtbf_us;
    const double system_mtbf_us = 1.0 / failure_rate;

    result.rows.resize(protocols.size());
    for (std::size_t p = 0; p < protocols.size(); ++p) {
        ProtocolSweepRow &row = result.rows[p];
        row.protocol = protocols[p];
        row.dalyIntervalUs = res::dalyInterval(
            system_mtbf_us, protocols[p].checkpointCostUs);
        row.cells.resize(interval_grid_us.size());
        for (std::size_t k = 0; k < interval_grid_us.size(); ++k) {
            ProtocolCell &cell = row.cells[k];
            cell.intervalUs = interval_grid_us[k];
            cell.cell.seedTimes.assign(seed_count, SimTime::max());
            cell.cell.seedDiagnoses.assign(
                seed_count, scen::FailureDiagnosis{});
        }
    }

    // One job per (protocol, interval, seed) cell slot. The fault
    // scenario is a pure function of the seed index alone — every
    // protocol and interval of seed s replays the exact same fault
    // sequence, so the comparison isolates the cost model. Each job
    // writes only its own slots; bit-identical at any thread count.
    const std::size_t perProtocol =
        interval_grid_us.size() * seed_count;
    pool.parallelFor(jobs, [&](std::size_t job, int lane) {
        const std::size_t p = job / perProtocol;
        const std::size_t k = (job % perProtocol) / seed_count;
        const std::size_t s = job % seed_count;
        const CheckpointProtocol &proto = protocols[p];
        const double interval = interval_grid_us[k];

        res::FaultModel model;
        model.processes.reserve(
            static_cast<std::size_t>(nodes) +
            (machine_mtbf_us > 0.0 ? 1u : 0u));
        for (int n = 0; n < nodes; ++n) {
            res::FaultProcess proc;
            proc.target = scen::ScenTarget::node;
            proc.nodeA = n;
            proc.effect = res::FaultEffect::failStop;
            proc.mtbfUs = mtbf_us;
            model.processes.push_back(std::move(proc));
        }
        if (machine_mtbf_us > 0.0) {
            // Machine-wide crashes restore from the global snapshot
            // under two-level protocols and from the local one
            // otherwise — the hierarchy's payoff shows up as data.
            res::FaultProcess proc;
            proc.target = scen::ScenTarget::all;
            proc.effect = res::FaultEffect::failStop;
            proc.mtbfUs = machine_mtbf_us;
            model.processes.push_back(std::move(proc));
        }
        const std::uint64_t row_seed = CounterRng(seed, 0).at(s);

        sim::PlatformConfig platform = nominal;
        platform.scenario =
            res::generateScenario(model, row_seed, result.horizon);
        platform.checkpointIntervalUs = interval;
        platform.checkpointCostUs = proto.checkpointCostUs;
        platform.restartCostUs = proto.restartCostUs;
        if (proto.globalIntervalFactor > 0.0) {
            platform.checkpointGlobalIntervalUs =
                proto.globalIntervalFactor * interval;
            platform.checkpointGlobalCostUs =
                proto.checkpointGlobalCostUs;
            platform.restartGlobalCostUs = proto.restartGlobalCostUs;
        }

        ResilienceCell &cell = result.rows[p].cells[k].cell;
        auto &session = sessions[static_cast<std::size_t>(lane)];
        try {
            cell.seedTimes[s] =
                session.run(*program, platform).totalTime;
        } catch (const scen::FailureError &err) {
            cell.seedDiagnoses[s] = err.diagnosis();
        }
    });

    for (ProtocolSweepRow &row : result.rows) {
        SimTime best = SimTime::max();
        for (ProtocolCell &cell : row.cells) {
            aggregateCell(cell.cell);
            // Argmin of the mean over surviving seeds; cells where
            // every seed died don't compete.
            if (cell.cell.failedFraction < 1.0 &&
                cell.cell.meanTime < best) {
                best = cell.cell.meanTime;
                row.bestIntervalUs = cell.intervalUs;
            }
        }
    }
    return result;
}

CollectiveSweepResult
collectiveSweep(const tracer::TraceBundle &bundle,
                const sim::PlatformConfig &base,
                const std::vector<double> &bandwidths,
                const std::vector<VariantSpec> &variants,
                const std::vector<TopologySpec> &topologies,
                int threads)
{
    // One topology campaign per collective model: topologySweep
    // already owns the per-topology platform setup and the
    // bit-identical sequential ordering, and the sweeps are
    // independent replays, so running the models back to back is
    // equivalent to interleaving them. The collective schedules
    // are shared through the process-wide cache, so the
    // algorithmic pass compiles each collective shape once across
    // all topologies.
    CollectiveSweepResult result;
    result.topologies = topologies;
    sim::PlatformConfig model_base = base;
    model_base.collectiveModel = coll::CollectiveModel::analytic;
    result.analytic =
        topologySweep(bundle, model_base, bandwidths, variants,
                      topologies, threads)
            .sweeps;
    model_base.collectiveModel =
        coll::CollectiveModel::algorithmic;
    result.algorithmic =
        topologySweep(bundle, model_base, bandwidths, variants,
                      topologies, threads)
            .sweeps;
    return result;
}

double
findIntermediateBandwidth(const trace::TraceSet &original,
                          const sim::PlatformConfig &base,
                          double lo_mbps, double hi_mbps,
                          int iterations)
{
    return findIntermediateBandwidth(sim::compileTrace(original),
                                     base, lo_mbps, hi_mbps,
                                     iterations);
}

double
findIntermediateBandwidth(const sim::ReplayProgram &original,
                          const sim::PlatformConfig &base,
                          double lo_mbps, double hi_mbps,
                          int iterations)
{
    ovlAssert(lo_mbps > 0.0 && hi_mbps > lo_mbps,
              "findIntermediateBandwidth: bad range");

    // Balance function: > 0 while communication dominates. The
    // comm-blocked share shrinks as bandwidth grows, so bisection on
    // the log axis converges onto comm time == compute time. One
    // session serves every iteration of the compiled-once program,
    // so the bisection replays with warmed-up arenas and no
    // per-iteration lowering.
    sim::ReplaySession session;
    const auto imbalance = [&](double mbps) {
        sim::PlatformConfig platform = base;
        platform.bandwidthMBps = mbps;
        const auto result = session.run(original, platform);
        return result.commFraction() - result.computeFraction();
    };

    double lo = std::log(lo_mbps);
    double hi = std::log(hi_mbps);
    if (imbalance(lo_mbps) <= 0.0)
        return lo_mbps;
    if (imbalance(hi_mbps) >= 0.0)
        return hi_mbps;
    for (int i = 0; i < iterations; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (imbalance(std::exp(mid)) > 0.0)
            lo = mid;
        else
            hi = mid;
    }
    return std::exp(0.5 * (lo + hi));
}

double
minBandwidthForTime(const trace::TraceSet &traces,
                    const sim::PlatformConfig &base,
                    SimTime target, double lo_mbps, double hi_mbps,
                    int iterations)
{
    return minBandwidthForTime(sim::compileTrace(traces), base,
                               target, lo_mbps, hi_mbps,
                               iterations);
}

double
minBandwidthForTime(const sim::ReplayProgram &program,
                    const sim::PlatformConfig &base,
                    SimTime target, double lo_mbps, double hi_mbps,
                    int iterations)
{
    ovlAssert(lo_mbps > 0.0 && hi_mbps > lo_mbps,
              "minBandwidthForTime: bad range");

    sim::ReplaySession session;
    const auto meets = [&](double mbps) {
        sim::PlatformConfig platform = base;
        platform.bandwidthMBps = mbps;
        return session.run(program, platform).totalTime <= target;
    };

    if (meets(lo_mbps))
        return lo_mbps;
    if (!meets(hi_mbps))
        return hi_mbps;

    double lo = std::log(lo_mbps);
    double hi = std::log(hi_mbps);
    for (int i = 0; i < iterations; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (meets(std::exp(mid)))
            hi = mid;
        else
            lo = mid;
    }
    return std::exp(hi);
}

IsoPerformanceResult
isoPerformance(const tracer::TraceBundle &bundle,
               const sim::PlatformConfig &base,
               const TransformConfig &variant,
               double reference_mbps, double tolerance,
               double search_lo_mbps, int threads)
{
    ovlAssert(reference_mbps > 0.0,
              "isoPerformance: bad reference bandwidth");
    ovlAssert(tolerance >= 0.0, "isoPerformance: bad tolerance");

    IsoPerformanceResult result;
    result.referenceBandwidth = reference_mbps;
    result.tolerance = tolerance;

    // One compiled program of the original serves the reference
    // replay and every iteration of its bisection below.
    const auto original = sim::compileShared(bundle.traces);

    sim::PlatformConfig reference = base;
    reference.bandwidthMBps = reference_mbps;
    result.originalTime =
        sim::simulate(*original, reference).totalTime;

    const auto target = SimTime::fromNs(static_cast<std::int64_t>(
        static_cast<double>(result.originalTime.ns()) *
        (1.0 + tolerance)));

    // The two bisections are independent searches against the same
    // target; each writes its own result field, so running them
    // concurrently cannot change the outcome. The overlapped-trace
    // construction and lowering stay inside their task to overlap
    // with the original's search; the TraceSet dies at compile.
    const int lanes = ThreadPool::resolveThreads(threads);
    ThreadPool pool(lanes > 2 ? 2 : lanes);
    pool.parallelFor(2, [&](std::size_t task, int) {
        if (task == 0) {
            result.originalRequiredBandwidth = minBandwidthForTime(
                *original, base, target, search_lo_mbps,
                reference_mbps);
        } else {
            const auto overlapped =
                sim::compileTrace(buildOverlappedTrace(
                                      bundle.traces,
                                      bundle.overlap, variant)
                                      .traces);
            result.overlappedRequiredBandwidth =
                minBandwidthForTime(overlapped, base, target,
                                    search_lo_mbps,
                                    reference_mbps);
        }
    });
    return result;
}

} // namespace ovlsim::core
