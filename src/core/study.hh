/**
 * @file
 * One-stop facade over the whole environment.
 *
 * OverlapStudy wires the pipeline of the paper's Figure 1 together:
 * application -> tracing tool -> original + overlapped traces ->
 * replay simulator, with variant traces cached so that sweeps don't
 * rebuild them per bandwidth point.
 */

#ifndef OVLSIM_CORE_STUDY_HH
#define OVLSIM_CORE_STUDY_HH

#include <map>
#include <mutex>
#include <string>

#include "core/analysis.hh"
#include "core/transform.hh"
#include "sim/engine.hh"
#include "tracer/tracer.hh"

namespace ovlsim::core {

/** Traces an application once and serves simulations of it. */
class OverlapStudy
{
  public:
    /** Wrap an existing trace bundle. */
    explicit OverlapStudy(tracer::TraceBundle bundle);

    /** Trace `program` on `ranks` ranks, then wrap the bundle. */
    static OverlapStudy
    fromProgram(int ranks, const vm::RankProgram &program,
                const tracer::TracerConfig &config = {});

    const tracer::TraceBundle &bundle() const { return bundle_; }

    /** The original (non-overlapped) trace. */
    const trace::TraceSet &
    originalTrace() const
    {
        return bundle_.traces;
    }

    /**
     * Overlapped trace for a variant (built once, then cached).
     *
     * Safe to call from multiple threads concurrently: the cache is
     * mutex-guarded and references stay valid for the study's
     * lifetime (node-based map, entries are never removed). When two
     * threads race to build the same variant, one build wins and the
     * other is discarded.
     */
    const trace::TraceSet &
    overlappedTrace(const TransformConfig &config);

    /** Replay the original trace. */
    sim::SimResult
    simulateOriginal(const sim::PlatformConfig &platform) const;

    /** Replay an overlapped variant. */
    sim::SimResult
    simulateOverlapped(const TransformConfig &config,
                       const sim::PlatformConfig &platform);

    /**
     * Speedup of a variant over the original on a platform
     * (1.30 means the overlapped execution is 30% faster).
     */
    double speedup(const TransformConfig &config,
                   const sim::PlatformConfig &platform);

  private:
    tracer::TraceBundle bundle_;
    /** Guards cache_ (variant builds may run on pool workers). */
    std::mutex cacheMutex_;
    std::map<std::string, trace::TraceSet> cache_;
};

} // namespace ovlsim::core

#endif // OVLSIM_CORE_STUDY_HH
