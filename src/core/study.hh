/**
 * @file
 * One-stop facade over the whole environment.
 *
 * OverlapStudy wires the pipeline of the paper's Figure 1 together:
 * application -> tracing tool -> original + overlapped traces ->
 * replay simulator, with variant traces cached so that sweeps don't
 * rebuild them per bandwidth point.
 */

#ifndef OVLSIM_CORE_STUDY_HH
#define OVLSIM_CORE_STUDY_HH

#include <map>
#include <mutex>
#include <string>

#include "core/analysis.hh"
#include "core/transform.hh"
#include "sim/engine.hh"
#include "tracer/tracer.hh"

namespace ovlsim::core {

/** Traces an application once and serves simulations of it. */
class OverlapStudy
{
  public:
    /** Wrap an existing trace bundle. */
    explicit OverlapStudy(tracer::TraceBundle bundle);

    /** Trace `program` on `ranks` ranks, then wrap the bundle. */
    static OverlapStudy
    fromProgram(int ranks, const vm::RankProgram &program,
                const tracer::TracerConfig &config = {});

    const tracer::TraceBundle &bundle() const { return bundle_; }

    /** The original (non-overlapped) trace. */
    const trace::TraceSet &
    originalTrace() const
    {
        return bundle_.traces;
    }

    /**
     * Overlapped trace for a variant (built once, then cached).
     *
     * Safe to call from multiple threads concurrently: the cache is
     * mutex-guarded and references stay valid for the study's
     * lifetime (node-based map, entries are never removed). When two
     * threads race to build the same variant, one build wins and the
     * other is discarded.
     */
    const trace::TraceSet &
    overlappedTrace(const TransformConfig &config);

    /**
     * Compiled replay program of the original trace, lowered once
     * and shared: every caller (and every sweep lane) gets the same
     * immutable program. Thread-safe like overlappedTrace.
     */
    std::shared_ptr<const sim::ReplayProgram> originalProgram() const;

    /**
     * Compiled replay program of an overlapped variant, built and
     * lowered once per variant, then served from the cache. All
     * lanes of a campaign share the returned program instead of
     * copying trace sets. Thread-safe like overlappedTrace.
     */
    std::shared_ptr<const sim::ReplayProgram>
    overlappedProgram(const TransformConfig &config);

    /** Replay the original trace (via its cached program). */
    sim::SimResult
    simulateOriginal(const sim::PlatformConfig &platform) const;

    /** Replay an overlapped variant (via its cached program). */
    sim::SimResult
    simulateOverlapped(const TransformConfig &config,
                       const sim::PlatformConfig &platform);

    /**
     * Speedup of a variant over the original on a platform
     * (1.30 means the overlapped execution is 30% faster).
     */
    double speedup(const TransformConfig &config,
                   const sim::PlatformConfig &platform);

  private:
    /** One cached variant: the trace and its compiled program. */
    struct Variant
    {
        trace::TraceSet traces;
        std::shared_ptr<const sim::ReplayProgram> program;
    };

    const Variant &variantFor(const TransformConfig &config);

    tracer::TraceBundle bundle_;
    /** Guards cache_ and originalProgram_ (campaign pool workers). */
    mutable std::mutex cacheMutex_;
    std::map<std::string, Variant> cache_;
    mutable std::shared_ptr<const sim::ReplayProgram>
        originalProgram_;
};

} // namespace ovlsim::core

#endif // OVLSIM_CORE_STUDY_HH
