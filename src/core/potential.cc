#include "potential.hh"

#include <sstream>

#include "util/strings.hh"

namespace ovlsim::core {

double
MessagePotential::productionSlackFraction() const
{
    if (productionWindow == 0)
        return 0.0;
    return productionSlack /
        static_cast<double>(productionWindow);
}

double
MessagePotential::consumptionSlackFraction() const
{
    if (consumptionWindow == 0)
        return 0.0;
    return consumptionSlack /
        static_cast<double>(consumptionWindow);
}

std::string
PotentialReport::toString() const
{
    std::ostringstream os;
    os << "overlap potential over " << messages.size()
       << " messages\n";
    if (messages.empty())
        return os.str();

    Histogram prod(0.0, 1.0, 10);
    Histogram cons(0.0, 1.0, 10);
    for (const auto &m : messages) {
        prod.add(m.productionSlackFraction());
        cons.add(m.consumptionSlackFraction());
    }
    os << strformat(
        "production slack:  mean %.2f of the send window "
        "(min %.2f, max %.2f)\n",
        productionSlack.mean(), productionSlack.min(),
        productionSlack.max());
    os << prod.render(40);
    os << strformat(
        "consumption slack: mean %.2f of the recv window "
        "(min %.2f, max %.2f)\n",
        consumptionSlack.mean(), consumptionSlack.min(),
        consumptionSlack.max());
    os << cons.render(40);
    return os.str();
}

PotentialReport
analyzePotential(const trace::OverlapSet &overlap)
{
    PotentialReport report;
    report.messages.reserve(overlap.size());

    for (const auto &[id, info] : overlap.all()) {
        MessagePotential m;
        m.id = id;
        m.bytes = info.bytes;
        m.productionWindow =
            info.sendInstr - info.prodWindowBegin;
        m.consumptionWindow =
            info.consWindowEnd - info.recvInstr;

        if (!info.blockLastStore.empty()) {
            double lead = 0.0;
            for (const auto p : info.blockLastStore) {
                const Instr at =
                    p > info.sendInstr ? info.sendInstr : p;
                lead += static_cast<double>(info.sendInstr - at);
            }
            m.productionSlack = lead /
                static_cast<double>(info.blockLastStore.size());
        }
        if (!info.blockFirstLoad.empty()) {
            double lag = 0.0;
            for (const auto c : info.blockFirstLoad) {
                const Instr at =
                    c < info.recvInstr ? info.recvInstr : c;
                lag += static_cast<double>(at - info.recvInstr);
            }
            m.consumptionSlack = lag /
                static_cast<double>(info.blockFirstLoad.size());
        }

        report.productionSlack.add(
            m.productionSlackFraction());
        report.consumptionSlack.add(
            m.consumptionSlackFraction());
        report.messages.push_back(m);
    }
    return report;
}

} // namespace ovlsim::core
