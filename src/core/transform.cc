#include "transform.hh"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_set>
#include <vector>

#include "util/logging.hh"
#include "util/mathutil.hh"
#include "util/strings.hh"

namespace ovlsim::core {

namespace {

using trace::CpuBurst;
using trace::IRecvRec;
using trace::ISendRec;
using trace::MessageId;
using trace::MessageOverlapInfo;
using trace::Record;
using trace::RecvRec;
using trace::RequestId;
using trace::SendRec;
using trace::WaitRec;

/** Chunk requests are allocated from here, per rank. */
constexpr RequestId chunkReqBase = 1ULL << 32;

/** Split plan of one message. */
struct ChunkPlan
{
    MessageId id = trace::invalidMessageId;
    Rank src = 0;
    Rank dst = 0;
    Bytes bytes = 0;
    std::size_t chunks = 0;
    std::vector<Bytes> chunkBytes;
    std::vector<Tag> tags;
    std::vector<RequestId> sendReqs;
    std::vector<RequestId> recvReqs;
    /** Absolute instr at which each chunk's ISend is injected. */
    std::vector<Instr> prodAt;
    /** Absolute instr at which each chunk's Wait is injected. */
    std::vector<Instr> consAt;
};

/** A record to splice into a rank's stream at an instr position. */
struct Injection
{
    Instr at = 0;
    std::uint64_t seq = 0;
    Record record;
};

bool
injectionLess(const Injection &a, const Injection &b)
{
    if (a.at != b.at)
        return a.at < b.at;
    return a.seq < b.seq;
}

/** Interpolated instr point for the ideal/linear pattern. */
Instr
linearPoint(Instr begin, Instr end, double fraction)
{
    ovlAssert(end >= begin, "linearPoint: inverted window");
    const double span = static_cast<double>(end - begin);
    const auto off = static_cast<Instr>(
        static_cast<double>(span) * fraction + 0.5);
    return begin + std::min<Instr>(off, end - begin);
}

class Transformer
{
  public:
    Transformer(const trace::TraceSet &original,
                const trace::OverlapSet &overlap,
                const TransformConfig &config)
        : original_(original), overlap_(overlap), config_(config)
    {}

    TransformResult
    run()
    {
        planMessages();
        TransformResult result;
        result.traces = trace::TraceSet(
            original_.name() + "+overlap(" + config_.label() + ")",
            original_.ranks(), original_.mips());
        for (Rank r = 0; r < original_.ranks(); ++r)
            rebuildRank(r, result.traces.rankTrace(r));
        result.chunkedMessages = plans_.size();
        for (const auto &[id, plan] : plans_)
            result.totalChunks += plan.chunks;
        return result;
    }

  private:
    void planMessages();
    void rebuildRank(Rank r, trace::RankTrace &out);

    const trace::TraceSet &original_;
    const trace::OverlapSet &overlap_;
    const TransformConfig &config_;

    std::map<MessageId, ChunkPlan> plans_;
    /** Sender-side burst injections (chunk ISends), per rank. */
    std::vector<std::vector<Injection>> sendInjections_;
    /** Receiver-side burst injections (chunk Waits), per rank. */
    std::vector<std::vector<Injection>> recvInjections_;
};

void
Transformer::planMessages()
{
    const auto nranks =
        static_cast<std::size_t>(original_.ranks());
    sendInjections_.assign(nranks, {});
    recvInjections_.assign(nranks, {});

    std::vector<RequestId> next_req(nranks, chunkReqBase);
    Tag next_tag = config_.chunkTagBase;
    std::uint64_t next_seq = 0;

    for (const auto &[id, info] : overlap_.all()) {
        ovlAssert(info.src >= 0 && info.src < original_.ranks() &&
                      info.dst >= 0 && info.dst < original_.ranks(),
                  "overlap info with out-of-range ranks");
        ovlAssert(info.tag < config_.chunkTagBase,
                  "application tag ", info.tag,
                  " collides with the chunk tag space");

        ChunkPlan plan;
        plan.id = id;
        plan.src = info.src;
        plan.dst = info.dst;
        plan.bytes = info.bytes;
        plan.chunks = chunkCountFor(info.bytes, config_);
        const Bytes chunk_bytes =
            ceilDiv(info.bytes, plan.chunks);

        const bool send_side =
            config_.mechanism != Mechanism::recvSide;
        const bool recv_side =
            config_.mechanism != Mechanism::sendSide;

        for (std::size_t i = 0; i < plan.chunks; ++i) {
            const Bytes lo = chunk_bytes * i;
            const Bytes hi =
                std::min(info.bytes, lo + chunk_bytes);
            plan.chunkBytes.push_back(hi - lo);
            plan.tags.push_back(next_tag++);
            if (next_tag >= (1 << 30))
                fatal("transform: chunk tag space exhausted");
            plan.sendReqs.push_back(
                next_req[static_cast<std::size_t>(info.src)]++);
            plan.recvReqs.push_back(
                next_req[static_cast<std::size_t>(info.dst)]++);

            // Production instant of this chunk.
            Instr prod = info.sendInstr;
            if (send_side) {
                if (config_.pattern == PatternModel::real) {
                    Instr latest = info.prodWindowBegin;
                    if (!info.blockLastStore.empty()) {
                        const auto first_block =
                            static_cast<std::size_t>(
                                lo / info.blockBytes);
                        const auto last_block =
                            static_cast<std::size_t>(
                                (hi - 1) / info.blockBytes);
                        latest = 0;
                        for (std::size_t b = first_block;
                             b <= last_block &&
                             b < info.blockLastStore.size();
                             ++b) {
                            latest = std::max(
                                latest, info.blockLastStore[b]);
                        }
                    }
                    prod = std::clamp(latest,
                                      info.prodWindowBegin,
                                      info.sendInstr);
                } else {
                    prod = linearPoint(
                        info.prodWindowBegin, info.sendInstr,
                        static_cast<double>(i + 1) /
                            static_cast<double>(plan.chunks));
                }
            }
            plan.prodAt.push_back(prod);

            // Consumption instant of this chunk.
            Instr cons = info.recvInstr;
            if (recv_side) {
                const Instr window_end =
                    std::max(info.consWindowEnd, info.recvInstr);
                if (config_.pattern == PatternModel::real) {
                    Instr earliest = window_end;
                    if (!info.blockFirstLoad.empty()) {
                        const auto first_block =
                            static_cast<std::size_t>(
                                lo / info.blockBytes);
                        const auto last_block =
                            static_cast<std::size_t>(
                                (hi - 1) / info.blockBytes);
                        for (std::size_t b = first_block;
                             b <= last_block &&
                             b < info.blockFirstLoad.size();
                             ++b) {
                            earliest = std::min(
                                earliest,
                                info.blockFirstLoad[b]);
                        }
                    }
                    cons = std::clamp(earliest, info.recvInstr,
                                      window_end);
                } else {
                    cons = linearPoint(
                        info.recvInstr, window_end,
                        static_cast<double>(i) /
                            static_cast<double>(plan.chunks));
                }
            }
            plan.consAt.push_back(cons);

            // Sender-side ISend injection.
            sendInjections_[static_cast<std::size_t>(info.src)]
                .push_back(Injection{
                    plan.prodAt[i], next_seq++,
                    ISendRec{info.dst, plan.tags[i],
                             plan.chunkBytes[i], id,
                             plan.sendReqs[i]}});
            // Receiver-side Wait injection.
            recvInjections_[static_cast<std::size_t>(info.dst)]
                .push_back(Injection{
                    plan.consAt[i], next_seq++,
                    WaitRec{plan.recvReqs[i]}});
        }
        plans_.emplace(id, std::move(plan));
    }

    for (auto &list : sendInjections_)
        std::stable_sort(list.begin(), list.end(), injectionLess);
    for (auto &list : recvInjections_)
        std::stable_sort(list.begin(), list.end(), injectionLess);
}

void
Transformer::rebuildRank(Rank r, trace::RankTrace &out)
{
    const auto &records = original_.rankTrace(r).records();
    const auto &sends =
        sendInjections_[static_cast<std::size_t>(r)];
    const auto &waits =
        recvInjections_[static_cast<std::size_t>(r)];
    std::size_t send_idx = 0;
    std::size_t wait_idx = 0;
    Instr pos = 0;
    // Chunk receive requests whose IRecv post has been emitted; a
    // chunk Wait may only flush once its request is posted, which
    // keeps Waits behind their posts even when injection points
    // coincide with unrelated records at the same instr position.
    std::unordered_set<RequestId> posted;

    const auto flush = [&](Instr limit, bool inclusive) {
        while (true) {
            const bool have_send = send_idx < sends.size() &&
                (sends[send_idx].at < limit ||
                 (inclusive && sends[send_idx].at == limit));
            if (have_send) {
                out.append(sends[send_idx].record);
                ++send_idx;
                continue;
            }
            const bool have_wait = wait_idx < waits.size() &&
                (waits[wait_idx].at < limit ||
                 (inclusive && waits[wait_idx].at == limit));
            if (have_wait) {
                const auto &wait_rec = std::get<WaitRec>(
                    waits[wait_idx].record);
                if (!posted.count(wait_rec.request))
                    break;
                out.append(waits[wait_idx].record);
                ++wait_idx;
                continue;
            }
            break;
        }
    };

    for (const auto &rec : records) {
        if (const auto *burst = std::get_if<CpuBurst>(&rec)) {
            flush(pos, true);
            const Instr end = pos + burst->instructions;
            // Split the burst at every interior injection point.
            Instr cursor = pos;
            while (true) {
                Instr next_point = end;
                if (send_idx < sends.size())
                    next_point = std::min(next_point,
                                          sends[send_idx].at);
                if (wait_idx < waits.size())
                    next_point = std::min(next_point,
                                          waits[wait_idx].at);
                if (next_point >= end)
                    break;
                if (next_point > cursor) {
                    out.append(CpuBurst{next_point - cursor});
                    cursor = next_point;
                }
                const std::size_t before =
                    send_idx + wait_idx;
                flush(next_point, true);
                if (send_idx + wait_idx == before) {
                    // A deferred wait is parked at this point; stop
                    // splitting, it will flush at a later record.
                    break;
                }
            }
            if (end > cursor)
                out.append(CpuBurst{end - cursor});
            pos = end;
            continue;
        }

        if (const auto *s = std::get_if<SendRec>(&rec)) {
            const auto it = plans_.find(s->message);
            if (it == plans_.end()) {
                flush(pos, true);
                out.append(rec);
                continue;
            }
            // All chunk ISends have points <= sendInstr == pos.
            flush(pos, true);
            // The blocking send's buffer-reuse semantics: wait for
            // every chunk of this message.
            for (const auto req : it->second.sendReqs)
                out.append(WaitRec{req});
            continue;
        }

        if (const auto *rv = std::get_if<RecvRec>(&rec)) {
            const auto it = plans_.find(rv->message);
            if (it == plans_.end()) {
                flush(pos, true);
                out.append(rec);
                continue;
            }
            // Chunk Waits can share this point; post the IRecvs
            // first, then let equal-point injections flush.
            flush(pos, false);
            const ChunkPlan &plan = it->second;
            for (std::size_t i = 0; i < plan.chunks; ++i) {
                out.append(IRecvRec{plan.src, plan.tags[i],
                                    plan.chunkBytes[i], plan.id,
                                    plan.recvReqs[i]});
                posted.insert(plan.recvReqs[i]);
            }
            flush(pos, true);
            continue;
        }

        // Collectives, native non-blocking ops and waits replay
        // verbatim.
        flush(pos, true);
        out.append(rec);
    }

    // Trailing injections (points clamped to the trace end).
    flush(std::numeric_limits<Instr>::max(), true);
    ovlAssert(send_idx == sends.size() && wait_idx == waits.size(),
              "transform: rank ", r, " left ",
              sends.size() - send_idx, " sends and ",
              waits.size() - wait_idx, " waits unplaced");
}

} // namespace

const char *
patternModelName(PatternModel pattern)
{
    switch (pattern) {
      case PatternModel::real: return "real";
      case PatternModel::idealLinear: return "ideal";
    }
    panic("patternModelName: bad value");
}

const char *
mechanismName(Mechanism mechanism)
{
    switch (mechanism) {
      case Mechanism::sendSide: return "send-side";
      case Mechanism::recvSide: return "recv-side";
      case Mechanism::both: return "both";
    }
    panic("mechanismName: bad value");
}

std::string
TransformConfig::label() const
{
    return strformat("%s/%s/%zu", patternModelName(pattern),
                     mechanismName(mechanism), chunks);
}

std::size_t
chunkCountFor(Bytes bytes, const TransformConfig &config)
{
    ovlAssert(config.chunks > 0,
              "transform: chunk count must be positive");
    const Bytes min_chunk = std::max<Bytes>(config.minChunkBytes, 1);
    const auto cap =
        static_cast<std::size_t>(ceilDiv(bytes, min_chunk));
    return std::max<std::size_t>(
        1, std::min(config.chunks, std::max<std::size_t>(cap, 1)));
}

TransformResult
buildOverlappedTrace(const trace::TraceSet &original,
                     const trace::OverlapSet &overlap,
                     const TransformConfig &config)
{
    Transformer transformer(original, overlap, config);
    return transformer.run();
}

} // namespace ovlsim::core
