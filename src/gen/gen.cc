#include "gen.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "trace/link.hh"
#include "util/counter_rng.hh"
#include "util/logging.hh"
#include "util/mathutil.hh"

namespace ovlsim::gen {

namespace {

using trace::CollOp;
using trace::CpuBurst;
using trace::CollectiveRec;
using trace::invalidMessageId;
using trace::MessageId;
using trace::RecvRec;
using trace::SendRec;

// Stream salts: one independent CounterRng address space per
// consumer, so families never share or steal each other's draws.
constexpr std::uint64_t saltBurst = 0x67656e2d62757273ULL;
constexpr std::uint64_t saltFanIn = 0x67656e2d66616e69ULL;
constexpr std::uint64_t saltChurn = 0x67656e2d63687572ULL;
constexpr std::uint64_t saltOps = 0x67656e2d6f707321ULL;

// Tags per family; all far below core/transform.hh's chunkTagBase.
constexpr Tag tagStencilBase = 1; // + 2*axis + phase, axes <= 4
constexpr Tag tagRequest = 16;
constexpr Tag tagReply = 17;
constexpr Tag tagForward = 18;
constexpr Tag tagDhtReply = 19;

/** Burst length scaled by a per-stream jitter draw in [1-j, 1+j]. */
Instr
jittered(Instr base, CounterRng &rng, double jitter)
{
    if (jitter <= 0.0 || base == 0)
        return base;
    const double f = rng.nextDouble(1.0 - jitter, 1.0 + jitter);
    return static_cast<Instr>(
        std::llround(static_cast<double>(base) * f));
}

/** Uniform [0, 1) from a random-access draw (53 mantissa bits). */
double
unitDouble(std::uint64_t draw)
{
    return static_cast<double>(draw >> 11) * 0x1.0p-53;
}

// -- stencil ---------------------------------------------------------

trace::TraceSet
generateStencil(const WorkloadConfig &config, std::uint64_t seed)
{
    const std::vector<int> grid =
        stencilGridDims(config.ranks, config.stencilDims);
    const auto dims = grid.size();

    trace::TraceSet traces(config.name, config.ranks, config.mips);
    for (Rank r = 0; r < config.ranks; ++r) {
        auto &rt = traces.rankTrace(r);
        auto rng = CounterRng(seed, saltBurst)
                       .substream(static_cast<std::uint64_t>(r));

        // Row-major coordinates of this rank in the process grid.
        std::vector<int> coord(dims);
        {
            int rem = r;
            for (std::size_t d = dims; d-- > 0;) {
                coord[d] = rem % grid[d];
                rem /= grid[d];
            }
        }
        const auto rankOf = [&](const std::vector<int> &co) {
            int acc = 0;
            for (std::size_t d = 0; d < dims; ++d)
                acc = acc * grid[d] + co[d];
            return static_cast<Rank>(acc);
        };

        for (int iter = 0; iter < config.iterations; ++iter) {
            rt.append(CpuBurst{jittered(config.computePerIteration,
                                        rng,
                                        config.computeJitter)});
            // Per axis, two parity phases of disjoint (c, c+1)
            // pairs on a non-periodic grid; the low member sends
            // first, the high member receives first, so every
            // blocking send faces a posted receive (deadlock-free
            // under eager and rendezvous alike).
            for (std::size_t axis = 0; axis < dims; ++axis) {
                for (int phase = 0; phase < 2; ++phase) {
                    const int cx = coord[axis];
                    const Tag tag = tagStencilBase +
                        static_cast<Tag>(2 * axis) + phase;
                    std::vector<int> co = coord;
                    if (cx % 2 == phase && cx + 1 < grid[axis]) {
                        co[axis] = cx + 1;
                        const Rank peer = rankOf(co);
                        rt.append(SendRec{peer, tag,
                                          config.haloBytes,
                                          invalidMessageId});
                        rt.append(RecvRec{peer, tag,
                                          config.haloBytes,
                                          invalidMessageId});
                    } else if (cx % 2 != phase && cx > 0) {
                        co[axis] = cx - 1;
                        const Rank peer = rankOf(co);
                        rt.append(RecvRec{peer, tag,
                                          config.haloBytes,
                                          invalidMessageId});
                        rt.append(SendRec{peer, tag,
                                          config.haloBytes,
                                          invalidMessageId});
                    }
                }
            }
        }
    }
    return traces;
}

// -- ml-training -----------------------------------------------------

trace::TraceSet
generateMlTraining(const WorkloadConfig &config, std::uint64_t seed)
{
    const int buckets = config.gradientBuckets;
    trace::TraceSet traces(config.name, config.ranks, config.mips);
    for (Rank r = 0; r < config.ranks; ++r) {
        auto &rt = traces.rankTrace(r);
        auto rng = CounterRng(seed, saltBurst)
                       .substream(static_cast<std::uint64_t>(r));
        for (int step = 0; step < config.iterations; ++step) {
            for (int b = 0; b < buckets; ++b) {
                // Interleave each gradient bucket's allreduce with
                // its share of the step's compute; the remainders
                // ride on the last bucket so totals are exact.
                Instr instr = config.stepInstr /
                    static_cast<Instr>(buckets);
                Bytes bytes = config.gradientBytes /
                    static_cast<Bytes>(buckets);
                if (b == buckets - 1) {
                    instr += config.stepInstr %
                        static_cast<Instr>(buckets);
                    bytes += config.gradientBytes %
                        static_cast<Bytes>(buckets);
                }
                rt.append(CpuBurst{jittered(
                    instr, rng, config.computeJitter)});
                rt.append(CollectiveRec{CollOp::allReduce, bytes,
                                        bytes, 0});
            }
        }
    }
    return traces;
}

// -- fan-in ----------------------------------------------------------

trace::TraceSet
generateFanIn(const WorkloadConfig &config, std::uint64_t seed)
{
    const int servers = config.servers;
    const Rank firstClient = static_cast<Rank>(servers);

    // Both endpoints of every request derive its routing and reply
    // size from the same addressed stream, so channel byte flows
    // agree by construction.
    const auto requestRng = [&](Rank client, int round) {
        return CounterRng(seed, saltFanIn)
            .substream(static_cast<std::uint64_t>(client))
            .substream(static_cast<std::uint64_t>(round));
    };
    const auto serverOf = [&](Rank client, int round, int j) {
        return static_cast<Rank>(
            requestRng(client, round)
                .at(static_cast<std::uint64_t>(2 * j)) %
            static_cast<std::uint64_t>(servers));
    };
    const auto replySizeOf = [&](Rank client, int round, int j) {
        // The request mix: one in four replies is a 4x "large"
        // response, the rest are the base size.
        const auto draw = requestRng(client, round)
                              .at(static_cast<std::uint64_t>(
                                  2 * j + 1));
        return draw % 4 == 0 ? config.replyBytes * 4
                             : config.replyBytes;
    };

    trace::TraceSet traces(config.name, config.ranks, config.mips);
    for (int round = 0; round < config.iterations; ++round) {
        // Clients: compute, request, block on the reply.
        for (Rank c = firstClient; c < config.ranks; ++c) {
            auto &rt = traces.rankTrace(c);
            for (int j = 0; j < config.requestsPerClient; ++j) {
                const Rank s = serverOf(c, round, j);
                rt.append(CpuBurst{config.clientInstr});
                rt.append(SendRec{s, tagRequest,
                                  config.requestBytes,
                                  invalidMessageId});
                rt.append(RecvRec{s, tagReply,
                                  replySizeOf(c, round, j),
                                  invalidMessageId});
            }
        }
        // Servers: handle requests in lexicographic
        // (request index, client) order — a topological order of
        // the round's message dependencies, hence deadlock-free.
        for (Rank s = 0; s < firstClient; ++s) {
            auto &rt = traces.rankTrace(s);
            for (int j = 0; j < config.requestsPerClient; ++j) {
                for (Rank c = firstClient; c < config.ranks; ++c) {
                    if (serverOf(c, round, j) != s)
                        continue;
                    rt.append(RecvRec{c, tagRequest,
                                      config.requestBytes,
                                      invalidMessageId});
                    rt.append(CpuBurst{config.serverInstr});
                    rt.append(SendRec{c, tagReply,
                                      replySizeOf(c, round, j),
                                      invalidMessageId});
                }
            }
        }
    }
    return traces;
}

// -- dht -------------------------------------------------------------

trace::TraceSet
generateDht(const WorkloadConfig &config, std::uint64_t seed)
{
    const int n_nodes = config.ranks;
    trace::TraceSet traces(config.name, config.ranks, config.mips);

    for (int round = 0; round < config.iterations; ++round) {
        // Churn: per-(round, node) Bernoulli live-set draw.
        std::vector<char> active(
            static_cast<std::size_t>(n_nodes));
        int active_count = 0;
        const auto churnRng = CounterRng(seed, saltChurn)
                                  .substream(static_cast<
                                             std::uint64_t>(round));
        for (int n = 0; n < n_nodes; ++n) {
            active[static_cast<std::size_t>(n)] =
                unitDouble(churnRng.at(
                    static_cast<std::uint64_t>(n))) >=
                config.churnProbability;
            active_count += active[static_cast<std::size_t>(n)];
        }
        // A near-empty round has nobody to talk to; skip its
        // operations (deterministically — the draw above decided).
        if (active_count < 2)
            continue;

        const auto nextActive = [&](int from) {
            int t = ((from % n_nodes) + n_nodes) % n_nodes;
            while (!active[static_cast<std::size_t>(t)])
                t = (t + 1) % n_nodes;
            return static_cast<Rank>(t);
        };

        // Operations in global (node, op) order; per-rank streams
        // are projections of this single linearization, i.e. a
        // serial schedule — replay cannot deadlock.
        for (int n = 0; n < n_nodes; ++n) {
            if (!active[static_cast<std::size_t>(n)])
                continue;
            const auto opRng =
                CounterRng(seed, saltOps)
                    .substream(
                        static_cast<std::uint64_t>(round))
                    .substream(static_cast<std::uint64_t>(n));
            for (int j = 0; j < config.opsPerRound; ++j) {
                const bool is_store =
                    unitDouble(opRng.at(
                        static_cast<std::uint64_t>(2 * j))) <
                    config.storeFraction;
                const Rank target = nextActive(static_cast<int>(
                    opRng.at(static_cast<std::uint64_t>(
                        2 * j + 1)) %
                    static_cast<std::uint64_t>(n_nodes)));

                traces.rankTrace(n).append(
                    CpuBurst{config.hopInstr});
                if (target == n)
                    continue; // local hit, no traffic

                // Chord-style route: the binary decomposition of
                // the ring distance, largest jumps first; inactive
                // intermediates are skipped (messages go directly
                // between consecutive live path nodes).
                std::vector<Rank> hops{static_cast<Rank>(n)};
                const int dist = (target - n + n_nodes) % n_nodes;
                int cur = n;
                for (int bit = 30; bit >= 0; --bit) {
                    if ((dist & (1 << bit)) == 0)
                        continue;
                    cur = (cur + (1 << bit)) % n_nodes;
                    if (cur != target &&
                        active[static_cast<std::size_t>(cur)]) {
                        hops.push_back(static_cast<Rank>(cur));
                    }
                }
                hops.push_back(target);

                const Bytes fwd_bytes = is_store
                    ? config.keyBytes + config.valueBytes
                    : config.keyBytes;
                const Bytes reply_bytes =
                    is_store ? Bytes(16) : config.valueBytes;

                for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
                    traces.rankTrace(hops[i]).append(
                        SendRec{hops[i + 1], tagForward,
                                fwd_bytes, invalidMessageId});
                    traces.rankTrace(hops[i + 1]).append(
                        RecvRec{hops[i], tagForward, fwd_bytes,
                                invalidMessageId});
                    traces.rankTrace(hops[i + 1]).append(
                        CpuBurst{config.hopInstr});
                }
                traces.rankTrace(target).append(
                    SendRec{static_cast<Rank>(n), tagDhtReply,
                            reply_bytes, invalidMessageId});
                traces.rankTrace(n).append(
                    RecvRec{target, tagDhtReply, reply_bytes,
                            invalidMessageId});
            }
        }
    }
    return traces;
}

// -- overlap synthesis -----------------------------------------------

/**
 * Synthesize per-message overlap metadata for a linked trace set:
 * linear production across the sender's [previous blocking record,
 * send] compute window and linear consumption across the receiver's
 * [recv, next blocking record] window — the tracer's "ideal"
 * profile, satisfying core/transform.hh's invariants (sendInstr is
 * the sender's exact position at the Send record, block instants
 * clamped inside their windows) by construction.
 */
trace::OverlapSet
synthesizeOverlap(const trace::TraceSet &traces)
{
    struct SendSide
    {
        Instr sendInstr = 0;
        Instr prodBegin = 0;
        Rank src = 0;
        Rank dst = 0;
        Tag tag = 0;
        Bytes bytes = 0;
    };
    struct RecvSide
    {
        Instr recvInstr = 0;
        Instr consEnd = 0;
    };
    std::map<MessageId, SendSide> sends;
    std::map<MessageId, RecvSide> recvs;

    for (const auto &rt : traces.all()) {
        const auto &recs = rt.records();

        // Absolute instr position at each record (running sum of
        // burst lengths), plus the end-of-trace position.
        std::vector<Instr> pos(recs.size() + 1);
        Instr p = 0;
        for (std::size_t i = 0; i < recs.size(); ++i) {
            pos[i] = p;
            if (const auto *b = std::get_if<CpuBurst>(&recs[i]))
                p += b->instructions;
        }
        pos[recs.size()] = p;

        // Position of the next blocking record strictly after i
        // (end of trace when none): the consumption window bound.
        std::vector<Instr> next_block(recs.size());
        Instr nb = p;
        for (std::size_t i = recs.size(); i-- > 0;) {
            next_block[i] = nb;
            if (trace::isBlockingRecord(recs[i]))
                nb = pos[i];
        }

        Instr prev_block = 0;
        for (std::size_t i = 0; i < recs.size(); ++i) {
            if (const auto *s = std::get_if<SendRec>(&recs[i])) {
                sends[s->message] = SendSide{pos[i], prev_block,
                                             rt.rank(), s->dst,
                                             s->tag, s->bytes};
            } else if (const auto *r =
                           std::get_if<RecvRec>(&recs[i])) {
                recvs[r->message] =
                    RecvSide{pos[i], next_block[i]};
            }
            if (trace::isBlockingRecord(recs[i]))
                prev_block = pos[i];
        }
    }

    trace::OverlapSet overlap;
    for (const auto &[id, ss] : sends) {
        const auto it = recvs.find(id);
        if (it == recvs.end() || ss.bytes == 0)
            continue;
        trace::MessageOverlapInfo info;
        info.id = id;
        info.src = ss.src;
        info.dst = ss.dst;
        info.tag = ss.tag;
        info.bytes = ss.bytes;
        info.sendInstr = ss.sendInstr;
        info.recvInstr = it->second.recvInstr;
        info.prodWindowBegin = ss.prodBegin;
        info.consWindowEnd = it->second.consEnd;
        info.blockBytes = tracer::profileBlockSize(
            ss.bytes, tracer::TracerConfig{});
        const auto blocks = static_cast<std::size_t>(
            ceilDiv(ss.bytes, info.blockBytes));
        info.blockLastStore.resize(blocks);
        info.blockFirstLoad.resize(blocks);
        const Instr prod_window = ss.sendInstr - ss.prodBegin;
        const Instr cons_window =
            it->second.consEnd - it->second.recvInstr;
        for (std::size_t b = 0; b < blocks; ++b) {
            // Block b's last store at the (b+1)/blocks point of
            // the production window (the final block completes
            // exactly at the send); its first load at the
            // b/blocks point of the consumption window (the first
            // block is needed right at the receive).
            info.blockLastStore[b] = ss.prodBegin +
                prod_window * static_cast<Instr>(b + 1) /
                    static_cast<Instr>(blocks);
            info.blockFirstLoad[b] = it->second.recvInstr +
                cons_window * static_cast<Instr>(b) /
                    static_cast<Instr>(blocks);
        }
        overlap.add(std::move(info));
    }
    return overlap;
}

} // namespace

const char *
workloadKindName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::stencil: return "stencil";
      case WorkloadKind::mlTraining: return "ml-training";
      case WorkloadKind::fanIn: return "fan-in";
      case WorkloadKind::dht: return "dht";
    }
    panic("workloadKindName: bad kind ",
          static_cast<int>(kind));
}

WorkloadKind
workloadKindFromName(const std::string &name)
{
    if (name == "stencil")
        return WorkloadKind::stencil;
    if (name == "ml-training")
        return WorkloadKind::mlTraining;
    if (name == "fan-in")
        return WorkloadKind::fanIn;
    if (name == "dht")
        return WorkloadKind::dht;
    fatal("unknown workload kind '", name,
          "' (expected stencil, ml-training, fan-in or dht)");
}

void
WorkloadConfig::validate() const
{
    const auto reject = [this](const char *key, auto &&...what) {
        fatal("workload '", name, "': key '", key, "' ",
              std::forward<decltype(what)>(what)...);
    };
    if (ranks < 2)
        reject("ranks", "must be at least 2, got ", ranks);
    if (ranks > (1 << 17))
        reject("ranks", "must be at most ", 1 << 17, ", got ",
               ranks);
    if (iterations < 1)
        reject("iterations", "must be at least 1, got ",
               iterations);
    if (!(mips > 0.0) || !std::isfinite(mips))
        reject("mips", "must be a positive finite number, got ",
               mips);

    switch (kind) {
      case WorkloadKind::stencil:
        if (stencilDims < 1 || stencilDims > 4)
            reject("stencil_dims", "must be in [1, 4], got ",
                   stencilDims);
        if (haloBytes == 0)
            reject("halo_bytes", "must be positive");
        if (computeJitter < 0.0 || computeJitter >= 1.0 ||
            !std::isfinite(computeJitter))
            reject("compute_jitter", "must be in [0, 1), got ",
                   computeJitter);
        break;
      case WorkloadKind::mlTraining:
        if (gradientBuckets < 1)
            reject("gradient_buckets", "must be at least 1, got ",
                   gradientBuckets);
        if (gradientBytes <
            static_cast<Bytes>(gradientBuckets))
            reject("gradient_bytes",
                   "must be at least gradient_buckets (",
                   gradientBuckets, "), got ", gradientBytes);
        if (computeJitter < 0.0 || computeJitter >= 1.0 ||
            !std::isfinite(computeJitter))
            reject("compute_jitter", "must be in [0, 1), got ",
                   computeJitter);
        break;
      case WorkloadKind::fanIn:
        if (servers < 1 || servers >= ranks)
            reject("servers", "must be in [1, ranks-1], got ",
                   servers);
        if (requestsPerClient < 1)
            reject("requests_per_client",
                   "must be at least 1, got ", requestsPerClient);
        if (requestBytes == 0)
            reject("request_bytes", "must be positive");
        if (replyBytes == 0)
            reject("reply_bytes", "must be positive");
        break;
      case WorkloadKind::dht:
        if (churnProbability < 0.0 || churnProbability >= 1.0 ||
            !std::isfinite(churnProbability))
            reject("churn_probability", "must be in [0, 1), got ",
                   churnProbability);
        if (storeFraction < 0.0 || storeFraction > 1.0 ||
            !std::isfinite(storeFraction))
            reject("store_fraction", "must be in [0, 1], got ",
                   storeFraction);
        if (opsPerRound < 1)
            reject("ops_per_round", "must be at least 1, got ",
                   opsPerRound);
        if (keyBytes == 0)
            reject("key_bytes", "must be positive");
        if (valueBytes == 0)
            reject("value_bytes", "must be positive");
        break;
    }
}

std::vector<int>
stencilGridDims(int ranks, int dims)
{
    ovlAssert(ranks >= 1 && dims >= 1,
              "stencilGridDims: bad arguments");
    // MPI_Dims_create shape: assign prime factors, largest first,
    // to the currently smallest extent; extents come out as close
    // to the d-th root as the factorization allows.
    std::vector<int> primes;
    int n = ranks;
    for (int p = 2; p * p <= n; ++p) {
        while (n % p == 0) {
            primes.push_back(p);
            n /= p;
        }
    }
    if (n > 1)
        primes.push_back(n);
    std::sort(primes.rbegin(), primes.rend());

    std::vector<int> grid(static_cast<std::size_t>(dims), 1);
    for (const int p : primes)
        *std::min_element(grid.begin(), grid.end()) *= p;
    std::sort(grid.rbegin(), grid.rend());
    return grid;
}

trace::TraceSet
generateTrace(const WorkloadConfig &config, std::uint64_t seed)
{
    config.validate();
    trace::TraceSet traces;
    switch (config.kind) {
      case WorkloadKind::stencil:
        traces = generateStencil(config, seed);
        break;
      case WorkloadKind::mlTraining:
        traces = generateMlTraining(config, seed);
        break;
      case WorkloadKind::fanIn:
        traces = generateFanIn(config, seed);
        break;
      case WorkloadKind::dht:
        traces = generateDht(config, seed);
        break;
    }
    // FIFO-link both endpoints of every message to a shared dense
    // id — the same pairing rule replay uses, so a generator bug
    // that breaks channel pairing is caught right here.
    trace::linkTraceSet(traces, nullptr, nullptr, nullptr);
    return traces;
}

tracer::TraceBundle
generateWorkload(const WorkloadConfig &config, std::uint64_t seed)
{
    tracer::TraceBundle bundle;
    bundle.traces = generateTrace(config, seed);
    bundle.overlap = synthesizeOverlap(bundle.traces);
    return bundle;
}

WorkloadConfig
withRankCount(WorkloadConfig config, int ranks)
{
    if (config.kind == WorkloadKind::fanIn) {
        const double ratio = static_cast<double>(config.servers) /
            static_cast<double>(config.ranks);
        config.servers = std::clamp(
            static_cast<int>(std::lround(
                ratio * static_cast<double>(ranks))),
            1, ranks - 1);
    }
    config.ranks = ranks;
    return config;
}

} // namespace ovlsim::gen
