/**
 * @file
 * Workload configuration files.
 *
 * Synthetic workloads version and swap like platforms do: a
 * line-oriented `key = value` format covering every WorkloadConfig
 * field, parsed through the shared util/keyvalue.hh reader, so
 * workload files get the platform-file robustness guarantees
 * (file+line in every FatalError, duplicate-key rejection,
 * NaN/inf/out-of-domain numeric rejection naming the key) by
 * construction.
 *
 *   # stencil-2d.wl
 *   kind = stencil
 *   name = halo-2d
 *   ranks = 64
 *   iterations = 8
 *   stencil_dims = 2
 *   halo_bytes = 32768
 *   compute_per_iteration = 1000000
 *
 * Every field of every family is always written and accepted on
 * read regardless of `kind`, so read(write(c)) == c for any valid
 * config (the round-trip invariant the fuzz test pins).
 */

#ifndef OVLSIM_GEN_WORKLOAD_FILE_HH
#define OVLSIM_GEN_WORKLOAD_FILE_HH

#include <iosfwd>
#include <string>

#include "gen/gen.hh"

namespace ovlsim::gen {

/**
 * Parse a workload config from a stream. Unknown and duplicate keys
 * are fatal; `source` names the stream in every parse error. The
 * parsed config is validated (WorkloadConfig::validate) before it
 * is returned.
 */
WorkloadConfig readWorkloadConfig(
    std::istream &is, const std::string &source = "workload config");

/** Parse a workload config file. */
WorkloadConfig readWorkloadConfigFile(const std::string &path);

/** Serialize a workload config in the same format. */
void writeWorkloadConfig(const WorkloadConfig &config,
                         std::ostream &os);

/** Serialize a workload config to a file. */
void writeWorkloadConfigFile(const WorkloadConfig &config,
                             const std::string &path);

} // namespace ovlsim::gen

#endif // OVLSIM_GEN_WORKLOAD_FILE_HH
