#include "workload_file.hh"

#include <fstream>
#include <limits>

#include "util/keyvalue.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace ovlsim::gen {

namespace {

/** Current value as an `int`, rejecting negatives and overflow. */
int
intOf(const KeyValueReader &reader)
{
    const std::int64_t v = reader.nonNegativeInt();
    if (v > std::numeric_limits<int>::max()) {
        reader.fail("key '", reader.key(),
                    "' is out of range, got '", reader.value(),
                    "'");
    }
    return static_cast<int>(v);
}

/** Current value as a Bytes/Instr count (non-negative 64-bit). */
std::uint64_t
u64Of(const KeyValueReader &reader)
{
    return static_cast<std::uint64_t>(reader.nonNegativeInt());
}

} // namespace

WorkloadConfig
readWorkloadConfig(std::istream &is, const std::string &source)
{
    WorkloadConfig config;
    KeyValueReader reader(is, source);
    while (reader.next()) {
        const std::string &key = reader.key();
        const std::string &value = reader.value();
        if (key == "kind") {
            try {
                config.kind = workloadKindFromName(value);
            } catch (const FatalError &err) {
                reader.fail(err.what());
            }
        } else if (key == "name") {
            config.name = value;
        } else if (key == "ranks") {
            config.ranks = intOf(reader);
        } else if (key == "iterations") {
            config.iterations = intOf(reader);
        } else if (key == "mips") {
            config.mips = reader.positiveDouble();
        } else if (key == "stencil_dims") {
            config.stencilDims = intOf(reader);
        } else if (key == "halo_bytes") {
            config.haloBytes = u64Of(reader);
        } else if (key == "compute_per_iteration") {
            config.computePerIteration = u64Of(reader);
        } else if (key == "compute_jitter") {
            config.computeJitter = reader.nonNegativeDouble();
        } else if (key == "gradient_bytes") {
            config.gradientBytes = u64Of(reader);
        } else if (key == "gradient_buckets") {
            config.gradientBuckets = intOf(reader);
        } else if (key == "step_instr") {
            config.stepInstr = u64Of(reader);
        } else if (key == "servers") {
            config.servers = intOf(reader);
        } else if (key == "requests_per_client") {
            config.requestsPerClient = intOf(reader);
        } else if (key == "request_bytes") {
            config.requestBytes = u64Of(reader);
        } else if (key == "reply_bytes") {
            config.replyBytes = u64Of(reader);
        } else if (key == "client_instr") {
            config.clientInstr = u64Of(reader);
        } else if (key == "server_instr") {
            config.serverInstr = u64Of(reader);
        } else if (key == "churn_probability") {
            config.churnProbability =
                reader.nonNegativeDouble();
        } else if (key == "ops_per_round") {
            config.opsPerRound = intOf(reader);
        } else if (key == "store_fraction") {
            config.storeFraction = reader.nonNegativeDouble();
        } else if (key == "key_bytes") {
            config.keyBytes = u64Of(reader);
        } else if (key == "value_bytes") {
            config.valueBytes = u64Of(reader);
        } else if (key == "hop_instr") {
            config.hopInstr = u64Of(reader);
        } else {
            reader.fail("unknown key '", key, "'");
        }
    }
    // Cross-field domain checks; every error names the workload
    // and the offending key.
    config.validate();
    return config;
}

WorkloadConfig
readWorkloadConfigFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open workload config file: ", path);
    return readWorkloadConfig(is, path);
}

void
writeWorkloadConfig(const WorkloadConfig &config, std::ostream &os)
{
    // Every family's fields are always written so any valid config
    // survives a write/read round trip bit-exactly.
    os << "kind = " << workloadKindName(config.kind) << "\n";
    os << "name = " << config.name << "\n";
    os << "ranks = " << config.ranks << "\n";
    os << "iterations = " << config.iterations << "\n";
    os << "mips = " << strformat("%.17g", config.mips) << "\n";
    os << "stencil_dims = " << config.stencilDims << "\n";
    os << "halo_bytes = " << config.haloBytes << "\n";
    os << "compute_per_iteration = " << config.computePerIteration
       << "\n";
    os << "compute_jitter = "
       << strformat("%.17g", config.computeJitter) << "\n";
    os << "gradient_bytes = " << config.gradientBytes << "\n";
    os << "gradient_buckets = " << config.gradientBuckets << "\n";
    os << "step_instr = " << config.stepInstr << "\n";
    os << "servers = " << config.servers << "\n";
    os << "requests_per_client = " << config.requestsPerClient
       << "\n";
    os << "request_bytes = " << config.requestBytes << "\n";
    os << "reply_bytes = " << config.replyBytes << "\n";
    os << "client_instr = " << config.clientInstr << "\n";
    os << "server_instr = " << config.serverInstr << "\n";
    os << "churn_probability = "
       << strformat("%.17g", config.churnProbability) << "\n";
    os << "ops_per_round = " << config.opsPerRound << "\n";
    os << "store_fraction = "
       << strformat("%.17g", config.storeFraction) << "\n";
    os << "key_bytes = " << config.keyBytes << "\n";
    os << "value_bytes = " << config.valueBytes << "\n";
    os << "hop_instr = " << config.hopInstr << "\n";
}

void
writeWorkloadConfigFile(const WorkloadConfig &config,
                        const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open workload config file for writing: ",
              path);
    writeWorkloadConfig(config, os);
}

} // namespace ovlsim::gen
