/**
 * @file
 * Synthetic workload generators: parameterized, seeded traces.
 *
 * The paper's six applications cap every campaign at recorded trace
 * sizes; the engine itself (compiled programs, topology contention,
 * algorithmic collectives, scenarios, resilience) can price fabrics
 * far larger than any recording. These generators close that gap:
 * each emits an ordinary trace::TraceSet — structurally valid by
 * construction, deadlock-free on replay — so every existing driver
 * works on generated workloads unchanged.
 *
 * Four families cover the communication shapes the paper apps cannot
 * express at scale:
 *
 *  - stencil: d-dimensional halo exchange on a near-square process
 *    grid (the sweep3d shape at arbitrary rank counts). Per axis, the
 *    exchange runs in two parity phases of disjoint neighbour pairs,
 *    so every blocking send faces a posted receive and the trace
 *    replays deadlock-free under eager and rendezvous protocols.
 *  - ml-training: per-step compute followed by a gradient allreduce,
 *    optionally split into buckets interleaved with the step's
 *    compute — the bucketed form is the gradient-overlap variant.
 *  - fan-in: client/server request-reply with configurable server
 *    counts and a small/large reply mix. Servers process requests in
 *    lexicographic (request index, client) order per round — a
 *    topological order of the message dependency graph, hence
 *    deadlock-free.
 *  - dht: churn-driven P2P lookup/store. Each round draws a live-set
 *    from per-(round, node) Bernoulli churn, routes each operation
 *    along binary (Chord-style) hop decompositions that skip
 *    inactive nodes, and projects the globally linearized message
 *    list onto per-rank streams — a serial schedule, hence
 *    deadlock-free.
 *
 * Generation is lowered through util/counter_rng.hh: every draw is a
 * pure function of (seed, addressed stream, counter), so traces are
 * deterministic, order-independent, and bit-identical across hosts
 * and thread counts. Both endpoints of a message derive its size from
 * the same addressed stream, so channel byte flows agree by
 * construction.
 *
 * generateWorkload() additionally synthesizes the per-message overlap
 * metadata (trace/overlap_info.hh) that core/transform.hh consumes:
 * production is spread linearly across the sender's compute window
 * and consumption across the receiver's — the "ideal linear" profile
 * — so generated workloads run through the full overlapped-variant
 * campaign machinery.
 */

#ifndef OVLSIM_GEN_GEN_HH
#define OVLSIM_GEN_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tracer/tracer.hh"
#include "trace/trace.hh"
#include "util/types.hh"

namespace ovlsim::gen {

/** The generator families. */
enum class WorkloadKind : std::uint8_t {
    stencil,
    mlTraining,
    fanIn,
    dht,
};

/** Stable name used in workload files ("stencil", "ml-training",
 * "fan-in", "dht"). */
const char *workloadKindName(WorkloadKind kind);

/** Inverse of workloadKindName(); throws FatalError on unknown
 * names. */
WorkloadKind workloadKindFromName(const std::string &name);

/**
 * Full description of one synthetic workload.
 *
 * All families share kind/name/ranks/iterations/mips; the remaining
 * parameters belong to the family selected by `kind` (foreign
 * parameters are carried but ignored, so one struct round-trips
 * through the file format losslessly). validate() rejects
 * out-of-domain values with the file-format key in the error.
 */
struct WorkloadConfig
{
    WorkloadKind kind = WorkloadKind::stencil;
    /** Application name stored in the trace set. */
    std::string name = "generated";
    /** Simulated MPI processes. */
    int ranks = 16;
    /** Outer repetitions: stencil iterations, training steps, fan-in
     * rounds, DHT rounds. */
    int iterations = 4;
    /** MIPS rate stored in the trace set (instructions / us). */
    double mips = 1000.0;

    // -- stencil --
    /** Grid dimensionality d in [1, 4]; ranks are factored into a
     * near-square d-dimensional grid. */
    int stencilDims = 2;
    /** Halo payload per neighbour exchange. */
    Bytes haloBytes = 32 * 1024;
    /** Compute burst per rank per iteration. */
    Instr computePerIteration = 1'000'000;
    /** Relative burst jitter in [0, 1): each stencil/ml-training
     * burst is scaled by a per-(rank, iteration) draw from
     * [1-j, 1+j]. */
    double computeJitter = 0.0;

    // -- ml-training --
    /** Gradient bytes allreduced per training step. */
    Bytes gradientBytes = 16 * 1024 * 1024;
    /** Gradient buckets per step; > 1 interleaves bucket allreduces
     * with the step's compute (the overlap variant). */
    int gradientBuckets = 1;
    /** Compute burst per training step. */
    Instr stepInstr = 8'000'000;

    // -- fan-in --
    /** Server ranks (ranks 0..servers-1); the rest are clients. */
    int servers = 4;
    /** Requests each client issues per round. */
    int requestsPerClient = 4;
    /** Request payload. */
    Bytes requestBytes = 512;
    /** Base reply payload; one in four replies is 4x (the mix). */
    Bytes replyBytes = 16 * 1024;
    /** Client compute before each request. */
    Instr clientInstr = 200'000;
    /** Server compute per request handled. */
    Instr serverInstr = 50'000;

    // -- dht --
    /** Per-(round, node) probability of being churned out. */
    double churnProbability = 0.1;
    /** Lookup/store operations per active node per round. */
    int opsPerRound = 2;
    /** Fraction of operations that are stores. */
    double storeFraction = 0.5;
    /** Key payload (lookup request / store header). */
    Bytes keyBytes = 64;
    /** Value payload (store request / lookup reply). */
    Bytes valueBytes = 4096;
    /** Compute burst per routing hop. */
    Instr hopInstr = 20'000;

    /** Reject out-of-domain parameters with named-key FatalErrors. */
    void validate() const;
};

/**
 * Lower a workload into an ordinary trace set.
 *
 * The result passes trace::validateTraceSet by construction, has
 * message ids linked (trace::linkTraceSet), and replays deadlock-free
 * on any fabric. Pure function of (config, seed): bit-identical
 * across hosts, thread counts and call order.
 */
trace::TraceSet generateTrace(const WorkloadConfig &config,
                              std::uint64_t seed);

/**
 * generateTrace() plus synthesized overlap metadata: every blocking
 * point-to-point message gets a linear production/consumption profile
 * spanning the sender's and receiver's compute windows, satisfying
 * the invariants core/transform.hh expects from tracer output. The
 * bundle drops into every campaign driver unchanged.
 */
tracer::TraceBundle generateWorkload(const WorkloadConfig &config,
                                     std::uint64_t seed);

/**
 * Re-target a workload at a different rank count, preserving the
 * family's shape: the stencil re-factors its grid, fan-in keeps its
 * client:server ratio (at least one server, at least one client),
 * and the collective/P2P parameters are untouched. This is the
 * scaling-sweep knob.
 */
WorkloadConfig withRankCount(WorkloadConfig config, int ranks);

/**
 * Near-square factorization of `ranks` into `dims` grid extents
 * (non-increasing). Exposed for structural tests.
 */
std::vector<int> stencilGridDims(int ranks, int dims);

} // namespace ovlsim::gen

#endif // OVLSIM_GEN_GEN_HH
