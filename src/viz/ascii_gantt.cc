#include "ascii_gantt.hh"

#include <array>
#include <sstream>
#include <vector>

#include "util/strings.hh"

namespace ovlsim::viz {

std::string
renderGantt(const sim::Timeline &timeline,
            const GanttOptions &options)
{
    std::ostringstream os;
    if (!options.title.empty())
        os << options.title << "\n";

    const SimTime span = timeline.span();
    if (span.ns() == 0 || timeline.ranks() == 0 ||
        options.width == 0) {
        os << "(empty timeline)\n";
        return os.str();
    }

    const double bin_ns = static_cast<double>(span.ns()) /
        static_cast<double>(options.width);

    for (Rank r = 0; r < timeline.ranks(); ++r) {
        // Accumulate, per column, the time spent in each state.
        constexpr std::size_t nstates = sim::rankStateCount;
        std::vector<std::array<double, nstates>> weight(
            options.width, std::array<double, nstates>{});
        for (const auto &iv : timeline.intervals(r)) {
            const auto s = static_cast<std::size_t>(iv.state);
            const double begin = static_cast<double>(iv.begin.ns());
            const double end = static_cast<double>(iv.end.ns());
            auto first = static_cast<std::size_t>(begin / bin_ns);
            auto last = static_cast<std::size_t>(end / bin_ns);
            first = std::min(first, options.width - 1);
            last = std::min(last, options.width - 1);
            for (std::size_t col = first; col <= last; ++col) {
                const double col_begin =
                    bin_ns * static_cast<double>(col);
                const double col_end =
                    bin_ns * static_cast<double>(col + 1);
                const double piece = std::min(end, col_end) -
                    std::max(begin, col_begin);
                if (piece > 0.0)
                    weight[col][s] += piece;
            }
        }

        os << strformat("%4d |", r);
        for (std::size_t col = 0; col < options.width; ++col) {
            std::size_t best = nstates; // idle default
            double best_w = 0.0;
            for (std::size_t s = 0; s < nstates; ++s) {
                if (weight[col][s] > best_w) {
                    best_w = weight[col][s];
                    best = s;
                }
            }
            const char code = best == nstates
                                  ? '.'
                                  : sim::rankStateCode(
                                        static_cast<sim::RankState>(
                                            best));
            os << code;
        }
        os << "|\n";
    }

    os << "time: 0 .. " << humanTime(span) << "\n";
    if (options.legend) {
        os << "legend: #=compute S=send-blocked R=recv-blocked "
              "W=wait-blocked C=collective X=restart .=idle\n";
    }
    return os.str();
}

} // namespace ovlsim::viz
