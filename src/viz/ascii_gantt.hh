/**
 * @file
 * ASCII Gantt rendering of simulated timelines.
 *
 * The textual equivalent of a Paraver window: one row per rank,
 * time binned into columns, each column showing the state the rank
 * spent the most time in during that bin. Used by the examples and
 * the Figure-1 pipeline bench to compare the non-overlapped and
 * overlapped executions qualitatively.
 */

#ifndef OVLSIM_VIZ_ASCII_GANTT_HH
#define OVLSIM_VIZ_ASCII_GANTT_HH

#include <string>

#include "sim/timeline.hh"

namespace ovlsim::viz {

/** Rendering options. */
struct GanttOptions
{
    /** Number of time columns. */
    std::size_t width = 100;
    /** Include the state legend below the chart. */
    bool legend = true;
    /** Optional chart caption. */
    std::string title;
};

/**
 * Render a timeline as an ASCII Gantt chart.
 *
 * Column characters: '#' compute, 'S' send-blocked, 'R'
 * recv-blocked, 'W' wait-blocked, 'C' collective, '.' idle.
 */
std::string renderGantt(const sim::Timeline &timeline,
                        const GanttOptions &options = {});

} // namespace ovlsim::viz

#endif // OVLSIM_VIZ_ASCII_GANTT_HH
