/**
 * @file
 * Paraver trace export.
 *
 * Writes the simulated timeline in the Paraver .prv format (plus the
 * companion .pcf configuration naming the states) so the
 * reconstructed behaviours can be inspected in the actual BSC
 * Paraver tool, mirroring the last stage of the paper's environment.
 */

#ifndef OVLSIM_VIZ_PARAVER_HH
#define OVLSIM_VIZ_PARAVER_HH

#include <iosfwd>
#include <string>

#include "sim/timeline.hh"

namespace ovlsim::viz {

/** Write the .prv body (states + communications) to a stream. */
void writeParaverTrace(const sim::Timeline &timeline,
                       std::ostream &os);

/**
 * Write `<basename>.prv` and `<basename>.pcf`.
 * Throws FatalError on IO errors.
 */
void writeParaverFiles(const sim::Timeline &timeline,
                       const std::string &basename);

/** The .pcf state-colour configuration matching our state codes. */
std::string paraverConfig();

} // namespace ovlsim::viz

#endif // OVLSIM_VIZ_PARAVER_HH
