/**
 * @file
 * State profiles: the quantitative counterpart of the Gantt chart.
 */

#ifndef OVLSIM_VIZ_PROFILE_HH
#define OVLSIM_VIZ_PROFILE_HH

#include <string>

#include "sim/result.hh"

namespace ovlsim::viz {

/**
 * Render a per-rank table of time-in-state percentages plus an
 * aggregate row, from a replay result.
 */
std::string renderStateProfile(const sim::SimResult &result);

/**
 * Render a side-by-side comparison of two replay results (typically
 * original vs. overlapped), showing total time, compute and blocked
 * shares, and the speedup.
 */
std::string renderComparison(const std::string &name_a,
                             const sim::SimResult &a,
                             const std::string &name_b,
                             const sim::SimResult &b);

} // namespace ovlsim::viz

#endif // OVLSIM_VIZ_PROFILE_HH
