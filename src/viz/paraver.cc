#include "paraver.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "util/strings.hh"

namespace ovlsim::viz {

namespace {

/** Paraver state value for one of our rank states. */
int
paraverState(sim::RankState state)
{
    // Values follow the conventional Paraver semantics: 1 running,
    // 3 waiting for a message, 5 synchronization, 6 blocked.
    switch (state) {
      case sim::RankState::compute: return 1;
      case sim::RankState::recvBlocked: return 3;
      case sim::RankState::waitBlocked: return 3;
      case sim::RankState::sendBlocked: return 6;
      case sim::RankState::collective: return 5;
      case sim::RankState::idle: return 0;
      // Paraver has no canonical rollback state; 13 ("Others") is
      // the conventional catch-all.
      case sim::RankState::restart: return 13;
    }
    panic("paraverState: bad state");
}

} // namespace

void
writeParaverTrace(const sim::Timeline &timeline, std::ostream &os)
{
    const auto span = timeline.span().ns();
    const int ranks = timeline.ranks();

    // Header: #Paraver (dd/mm/yy at hh:mm):duration:nodes:apps:...
    // A fixed date keeps output deterministic.
    os << "#Paraver (01/01/10 at 00:00):" << span << "_ns:1("
       << ranks << "):1:" << ranks << "(";
    for (Rank r = 0; r < ranks; ++r)
        os << "1:1" << (r + 1 < ranks ? "," : "");
    os << ")\n";

    // State records: 1:cpu:appl:task:thread:begin:end:state
    for (Rank r = 0; r < ranks; ++r) {
        for (const auto &iv : timeline.intervals(r)) {
            os << "1:" << (r + 1) << ":1:" << (r + 1) << ":1:"
               << iv.begin.ns() << ":" << iv.end.ns() << ":"
               << paraverState(iv.state) << "\n";
        }
    }

    // Communication records:
    // 3:cpu:appl:task:thread:lsend:psend:cpu:appl:task:thread:
    //   lrecv:precv:size:tag
    for (const auto &comm : timeline.comms()) {
        os << "3:" << (comm.src + 1) << ":1:" << (comm.src + 1)
           << ":1:" << comm.sendPost.ns() << ":"
           << comm.transferStart.ns() << ":" << (comm.dst + 1)
           << ":1:" << (comm.dst + 1) << ":1:"
           << comm.recvComplete.ns() << ":" << comm.arrival.ns()
           << ":" << comm.bytes << ":" << comm.tag << "\n";
    }
}

std::string
paraverConfig()
{
    std::ostringstream os;
    os << "STATES\n"
       << "0    Idle\n"
       << "1    Running\n"
       << "3    Waiting a message\n"
       << "5    Synchronization\n"
       << "6    Blocked on send\n"
       << "\n"
       << "STATES_COLOR\n"
       << "0    {117,195,255}\n"
       << "1    {0,0,255}\n"
       << "3    {255,0,0}\n"
       << "5    {255,255,0}\n"
       << "6    {255,128,0}\n";
    return os.str();
}

void
writeParaverFiles(const sim::Timeline &timeline,
                  const std::string &basename)
{
    {
        std::ofstream prv(basename + ".prv");
        if (!prv)
            fatal("cannot open '", basename, ".prv' for writing");
        writeParaverTrace(timeline, prv);
        if (!prv)
            fatal("error writing '", basename, ".prv'");
    }
    {
        std::ofstream pcf(basename + ".pcf");
        if (!pcf)
            fatal("cannot open '", basename, ".pcf' for writing");
        pcf << paraverConfig();
        if (!pcf)
            fatal("error writing '", basename, ".pcf'");
    }
}

} // namespace ovlsim::viz
