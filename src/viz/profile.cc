#include "profile.hh"

#include <sstream>

#include "util/strings.hh"
#include "util/table.hh"

namespace ovlsim::viz {

namespace {

double
pct(SimTime part, SimTime whole)
{
    if (whole.ns() == 0)
        return 0.0;
    return 100.0 * static_cast<double>(part.ns()) /
        static_cast<double>(whole.ns());
}

} // namespace

std::string
renderStateProfile(const sim::SimResult &result)
{
    TablePrinter table({"rank", "end", "compute%", "send-blk%",
                        "recv-blk%", "wait-blk%", "collective%"});
    sim::RankResult total;
    for (const auto &rr : result.perRank) {
        table.addRow({strformat("%d", rr.rank),
                      humanTime(rr.endTime),
                      strformat("%.1f", pct(rr.computeTime,
                                            rr.endTime)),
                      strformat("%.1f", pct(rr.sendBlockedTime,
                                            rr.endTime)),
                      strformat("%.1f", pct(rr.recvBlockedTime,
                                            rr.endTime)),
                      strformat("%.1f", pct(rr.waitBlockedTime,
                                            rr.endTime)),
                      strformat("%.1f", pct(rr.collectiveTime,
                                            rr.endTime))});
        total.computeTime += rr.computeTime;
        total.sendBlockedTime += rr.sendBlockedTime;
        total.recvBlockedTime += rr.recvBlockedTime;
        total.waitBlockedTime += rr.waitBlockedTime;
        total.collectiveTime += rr.collectiveTime;
        total.endTime += rr.endTime;
    }
    table.addRow({"all", humanTime(result.totalTime),
                  strformat("%.1f", pct(total.computeTime,
                                        total.endTime)),
                  strformat("%.1f", pct(total.sendBlockedTime,
                                        total.endTime)),
                  strformat("%.1f", pct(total.recvBlockedTime,
                                        total.endTime)),
                  strformat("%.1f", pct(total.waitBlockedTime,
                                        total.endTime)),
                  strformat("%.1f", pct(total.collectiveTime,
                                        total.endTime))});
    return table.toString();
}

std::string
renderComparison(const std::string &name_a, const sim::SimResult &a,
                 const std::string &name_b, const sim::SimResult &b)
{
    std::ostringstream os;
    TablePrinter table({"execution", "time", "compute%", "comm%"});
    table.addRow({name_a, humanTime(a.totalTime),
                  strformat("%.1f", a.computeFraction() * 100.0),
                  strformat("%.1f", a.commFraction() * 100.0)});
    table.addRow({name_b, humanTime(b.totalTime),
                  strformat("%.1f", b.computeFraction() * 100.0),
                  strformat("%.1f", b.commFraction() * 100.0)});
    os << table.toString();
    if (b.totalTime.ns() > 0) {
        const double speedup =
            static_cast<double>(a.totalTime.ns()) /
            static_cast<double>(b.totalTime.ns());
        os << strformat("%s is %.1f%% %s than %s\n",
                        name_b.c_str(),
                        (speedup >= 1.0 ? speedup - 1.0
                                        : 1.0 - speedup) *
                            100.0,
                        speedup >= 1.0 ? "faster" : "slower",
                        name_a.c_str());
    }
    return os.str();
}

} // namespace ovlsim::viz
