#include "tracer.hh"

#include <algorithm>
#include <vector>

#include "trace/link.hh"
#include "trace/validate.hh"
#include "util/logging.hh"
#include "util/mathutil.hh"

namespace ovlsim::tracer {

namespace {

using trace::MessageOverlapInfo;
using trace::OverlapSet;
using trace::TraceSet;
using vm::Buffer;
using vm::ProvisionalId;

/** Per-buffer last-store shadow at shadowBlockBytes granularity. */
struct BufferShadow
{
    Bytes size = 0;
    std::vector<Instr> lastStore;
};

/** Marks a profile block that has not been loaded yet. */
constexpr Instr unsetInstr = ~static_cast<Instr>(0);

/** Open consumption tracker for one received message. */
struct ConsTracker
{
    ProvisionalId id = 0;
    std::uint32_t bufferId = 0;
    Bytes offset = 0;
    Bytes len = 0;
    Bytes profBlock = 0;
    Instr recvInstr = 0;
    Rank src = 0;
    Tag tag = 0;
    /** Per profile block; unsetInstr means "not yet loaded". */
    std::vector<Instr> firstLoad;
};

struct RankState
{
    Instr lastEmit = 0;
    /** Instr position of the most recent communication record. */
    Instr lastCommInstr = 0;
    /**
     * Start of the most recent computation region: the position of
     * the last communication record that was followed by actual
     * computation. Back-to-back exchange records therefore all share
     * the producing burst that precedes the group.
     */
    Instr windowAnchor = 0;
    std::vector<BufferShadow> buffers;
    std::vector<ConsTracker> open;
};

/**
 * VmObserver implementation: builds the original trace and the
 * endpoint-local halves of the overlap profiles.
 */
class Tracer : public vm::VmObserver
{
  public:
    Tracer(int ranks, const TracerConfig &config)
        : config_(config),
          traces_(config.appName, ranks, config.mips),
          states_(static_cast<std::size_t>(ranks))
    {}

    TraceSet &traces() { return traces_; }
    OverlapSet &senderInfos() { return senderInfos_; }
    OverlapSet &receiverInfos() { return receiverInfos_; }

    void
    onAllocBuffer(Rank r, Instr, Buffer buf,
                  const std::string &) override
    {
        auto &st = state(r);
        const std::size_t blocks = static_cast<std::size_t>(
            ceilDiv(buf.size, config_.shadowBlockBytes));
        if (st.buffers.size() < buf.id)
            st.buffers.resize(buf.id);
        st.buffers[buf.id - 1] =
            BufferShadow{buf.size, std::vector<Instr>(blocks, 0)};
    }

    void
    onStore(Rank r, Instr now, Buffer buf, Bytes offset,
            Bytes len) override
    {
        auto &shadow = shadowOf(r, buf.id);
        const auto first = static_cast<std::size_t>(
            offset / config_.shadowBlockBytes);
        const auto last = static_cast<std::size_t>(
            (offset + len - 1) / config_.shadowBlockBytes);
        for (std::size_t b = first; b <= last; ++b)
            shadow.lastStore[b] = now;
    }

    void
    onLoad(Rank r, Instr now, Buffer buf, Bytes offset,
           Bytes len) override
    {
        auto &st = state(r);
        for (auto &tracker : st.open) {
            if (tracker.bufferId != buf.id)
                continue;
            const Bytes lo = std::max(tracker.offset, offset);
            const Bytes hi = std::min(tracker.offset + tracker.len,
                                      offset + len);
            if (lo >= hi)
                continue;
            const auto first = static_cast<std::size_t>(
                (lo - tracker.offset) / tracker.profBlock);
            const auto last = static_cast<std::size_t>(
                (hi - 1 - tracker.offset) / tracker.profBlock);
            for (std::size_t b = first; b <= last; ++b) {
                if (tracker.firstLoad[b] == unsetInstr)
                    tracker.firstLoad[b] = now;
            }
        }
    }

    void
    onSend(Rank r, Instr now, Buffer buf, Bytes offset, Bytes len,
           Rank dst, Tag tag, ProvisionalId id) override
    {
        beginCommRecord(r, now);
        recordProduction(r, now, buf, offset, len, dst, tag, id);
        traces_.rankTrace(r).append(
            trace::SendRec{dst, tag, len, id});
    }

    void
    onRecv(Rank r, Instr now, Buffer buf, Bytes offset, Bytes len,
           Rank src, Tag tag, ProvisionalId id) override
    {
        auto &st = state(r);
        beginCommRecord(r, now);
        // Reusing a buffer region implies the previous message's
        // consumption window has closed.
        closeOverlappingTrackers(r, now, buf, offset, len);
        traces_.rankTrace(r).append(
            trace::RecvRec{src, tag, len, id});

        ConsTracker tracker;
        tracker.id = id;
        tracker.bufferId = buf.id;
        tracker.offset = offset;
        tracker.len = len;
        tracker.profBlock = profileBlockSize(len, config_);
        tracker.recvInstr = now;
        tracker.src = src;
        tracker.tag = tag;
        tracker.firstLoad.assign(
            static_cast<std::size_t>(
                ceilDiv(len, tracker.profBlock)),
            unsetInstr);
        st.open.push_back(std::move(tracker));
    }

    void
    onISend(Rank r, Instr now, Buffer, Bytes, Bytes len, Rank dst,
            Tag tag, ProvisionalId id,
            trace::RequestId req) override
    {
        beginCommRecord(r, now);
        traces_.rankTrace(r).append(
            trace::ISendRec{dst, tag, len, id, req});
        // Native non-blocking sends are replayed verbatim; no
        // production profile is recorded for them.
    }

    void
    onIRecv(Rank r, Instr now, Buffer, Bytes, Bytes len, Rank src,
            Tag tag, ProvisionalId id,
            trace::RequestId req) override
    {
        beginCommRecord(r, now);
        traces_.rankTrace(r).append(
            trace::IRecvRec{src, tag, len, id, req});
    }

    void
    onWait(Rank r, Instr now, trace::RequestId req) override
    {
        beginCommRecord(r, now);
        traces_.rankTrace(r).append(trace::WaitRec{req});
    }

    void
    onWaitAll(Rank r, Instr now) override
    {
        beginCommRecord(r, now);
        traces_.rankTrace(r).append(trace::WaitAllRec{});
    }

    void
    onCollective(Rank r, Instr now, trace::CollOp op,
                 Bytes send_bytes, Bytes recv_bytes,
                 Rank root) override
    {
        beginCommRecord(r, now);
        traces_.rankTrace(r).append(
            trace::CollectiveRec{op, send_bytes, recv_bytes, root});
    }

    void
    onFinish(Rank r, Instr now) override
    {
        emitBurst(r, now);
        closeTrackers(r, now);
    }

  private:
    RankState &
    state(Rank r)
    {
        return states_[static_cast<std::size_t>(r)];
    }

    BufferShadow &
    shadowOf(Rank r, std::uint32_t buffer_id)
    {
        auto &st = state(r);
        ovlAssert(buffer_id >= 1 &&
                      buffer_id <= st.buffers.size(),
                  "tracer: unknown buffer id");
        return st.buffers[buffer_id - 1];
    }

    void
    emitBurst(Rank r, Instr now)
    {
        auto &st = state(r);
        if (now > st.lastEmit) {
            traces_.rankTrace(r).append(
                trace::CpuBurst{now - st.lastEmit});
            st.lastEmit = now;
        }
    }

    /**
     * Common prologue of every communication record: flush the burst
     * and, if a computation region just ended, advance the window
     * anchor and finalize the consumption trackers whose consuming
     * region it was.
     */
    void
    beginCommRecord(Rank r, Instr now)
    {
        auto &st = state(r);
        emitBurst(r, now);
        if (now > st.lastCommInstr) {
            st.windowAnchor = st.lastCommInstr;
            closeTrackers(r, now);
        }
        st.lastCommInstr = now;
    }

    /** Capture the production profile of an outgoing payload. */
    void
    recordProduction(Rank r, Instr now, Buffer buf, Bytes offset,
                     Bytes len, Rank dst, Tag tag,
                     ProvisionalId id)
    {
        auto &st = state(r);
        const auto &shadow = shadowOf(r, buf.id);
        const Bytes prof_block = profileBlockSize(len, config_);
        const auto blocks =
            static_cast<std::size_t>(ceilDiv(len, prof_block));

        MessageOverlapInfo info;
        info.id = id;
        info.src = r;
        info.dst = dst;
        info.tag = tag;
        info.bytes = len;
        info.sendInstr = now;
        info.prodWindowBegin = st.windowAnchor;
        info.blockBytes = prof_block;
        info.blockLastStore.resize(blocks);

        for (std::size_t b = 0; b < blocks; ++b) {
            const Bytes lo = offset + prof_block * b;
            const Bytes hi =
                std::min(offset + len, lo + prof_block);
            const auto s_first = static_cast<std::size_t>(
                lo / config_.shadowBlockBytes);
            const auto s_last = static_cast<std::size_t>(
                (hi - 1) / config_.shadowBlockBytes);
            Instr latest = 0;
            for (std::size_t s = s_first; s <= s_last; ++s)
                latest = std::max(latest, shadow.lastStore[s]);
            // Clamp into the producing window: data stored before
            // the window opened was simply ready from its start.
            latest = std::clamp(latest, info.prodWindowBegin, now);
            info.blockLastStore[b] = latest;
        }
        senderInfos_.add(std::move(info));
    }

    void
    finalizeTracker(Rank r, Instr now, ConsTracker &tracker)
    {
        MessageOverlapInfo info;
        info.id = tracker.id;
        info.src = tracker.src;
        info.dst = r;
        info.tag = tracker.tag;
        info.bytes = tracker.len;
        info.recvInstr = tracker.recvInstr;
        info.consWindowEnd = now;
        info.blockBytes = tracker.profBlock;
        info.blockFirstLoad = std::move(tracker.firstLoad);
        for (auto &first : info.blockFirstLoad) {
            // Blocks never read inside the window can be awaited at
            // its very end.
            if (first == unsetInstr)
                first = now;
            first = std::clamp(first, tracker.recvInstr, now);
        }
        receiverInfos_.add(std::move(info));
    }

    /** Close every open tracker of the rank (sync point reached). */
    void
    closeTrackers(Rank r, Instr now)
    {
        auto &st = state(r);
        for (auto &tracker : st.open)
            finalizeTracker(r, now, tracker);
        st.open.clear();
    }

    /** Close only trackers overlapping a reused buffer region. */
    void
    closeOverlappingTrackers(Rank r, Instr now, Buffer buf,
                             Bytes offset, Bytes len)
    {
        auto &st = state(r);
        auto it = st.open.begin();
        while (it != st.open.end()) {
            const bool overlaps = it->bufferId == buf.id &&
                offset < it->offset + it->len &&
                it->offset < offset + len;
            if (overlaps) {
                finalizeTracker(r, now, *it);
                it = st.open.erase(it);
            } else {
                ++it;
            }
        }
    }

    TracerConfig config_;
    TraceSet traces_;
    OverlapSet senderInfos_;
    OverlapSet receiverInfos_;
    std::vector<RankState> states_;
};

} // namespace

Bytes
profileBlockSize(Bytes bytes, const TracerConfig &config)
{
    ovlAssert(bytes > 0, "profileBlockSize: empty message");
    ovlAssert(config.maxProfileBlocks > 0 &&
                  config.shadowBlockBytes > 0,
              "profileBlockSize: bad tracer config");
    const Bytes ideal = ceilDiv(
        bytes, static_cast<Bytes>(config.maxProfileBlocks));
    return roundUp(std::max<Bytes>(ideal, 1),
                   config.shadowBlockBytes);
}

TraceBundle
traceApplication(int ranks, const vm::RankProgram &program,
                 const TracerConfig &config)
{
    ovlAssert(ranks > 0, "traceApplication: need at least 1 rank");
    if (config.mips <= 0.0)
        fatal("traceApplication: MIPS rate must be positive");

    Tracer tracer(ranks, config);
    vm::VmHost::run(ranks, program, tracer);

    TraceBundle bundle;
    bundle.traces = std::move(tracer.traces());
    trace::linkTraceSet(bundle.traces, &tracer.senderInfos(),
                        &tracer.receiverInfos(), &bundle.overlap);

    if (config.validate) {
        const auto report =
            trace::validateTraceSet(bundle.traces);
        if (!report.valid()) {
            fatal("tracer produced an invalid trace:\n",
                  report.toString());
        }
    }
    return bundle;
}

} // namespace ovlsim::tracer
