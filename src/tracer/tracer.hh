/**
 * @file
 * The tracing tool: turns one VM run into replayable traces.
 *
 * This is the paper's designed tracing tool (Sec. II-B). It leverages
 * the VM's two instrumentation channels — wrapped MPI-like calls and
 * tracked memory activities — to produce, from a single run:
 *
 *  - the original (non-overlapped) Dimemas-style trace: computation
 *    records carrying burst lengths in instructions plus
 *    communication records carrying message parameters, and
 *  - per-message overlap metadata: at a fixed block granularity, the
 *    instruction instant at which every piece of a payload was last
 *    produced before its send and first consumed after its receive,
 *    together with the window bounds used both to clamp measured
 *    points and to synthesize the ideal (sequential) pattern.
 *
 * The overlapped "potential" traces themselves are synthesized later
 * by the core transformation (core/transform.hh) from exactly this
 * bundle, which mirrors the paper's tool emitting several Dimemas
 * traces from one instrumented execution.
 */

#ifndef OVLSIM_TRACER_TRACER_HH
#define OVLSIM_TRACER_TRACER_HH

#include <cstddef>
#include <string>

#include "trace/overlap_info.hh"
#include "trace/trace.hh"
#include "vm/vm.hh"

namespace ovlsim::tracer {

/** Tracing-tool configuration. */
struct TracerConfig
{
    /** Application name stored in the trace set. */
    std::string appName = "app";

    /**
     * Average MIPS rate observed in the "real run"; scales
     * instruction counts into time at replay (paper Sec. II-B).
     */
    double mips = 1000.0;

    /** Granularity of the per-buffer store shadow memory. */
    Bytes shadowBlockBytes = 256;

    /** Upper bound on profile blocks recorded per message. */
    std::size_t maxProfileBlocks = 64;

    /** Run the structural validator on the generated trace. */
    bool validate = true;
};

/** Everything the tracing tool extracts from one run. */
struct TraceBundle
{
    /** Original (non-overlapped) trace, message ids linked. */
    trace::TraceSet traces;
    /** Fused production/consumption profiles per message. */
    trace::OverlapSet overlap;
};

/**
 * Profile block size used for a message of `bytes` bytes. Both
 * endpoints derive it from the same formula, so sender and receiver
 * profiles always align.
 */
Bytes profileBlockSize(Bytes bytes, const TracerConfig &config);

/**
 * Run `program` on every rank under the tracing tool and return the
 * trace bundle.
 *
 * @param ranks number of simulated MPI processes
 * @param program the application (one entry point, SPMD style)
 * @param config tool configuration
 */
TraceBundle traceApplication(int ranks,
                             const vm::RankProgram &program,
                             const TracerConfig &config = {});

} // namespace ovlsim::tracer

#endif // OVLSIM_TRACER_TRACER_HH
