/**
 * @file
 * Fundamental value types shared across the whole environment.
 *
 * The simulator clock is an integer nanosecond count (SimTime) and
 * application "work" is an instruction count (Instr), mirroring the
 * paper's time model: computation bursts are measured in instructions
 * executed and scaled by an average MIPS rate only when a trace is
 * replayed on a concrete platform.
 */

#ifndef OVLSIM_UTIL_TYPES_HH
#define OVLSIM_UTIL_TYPES_HH

#include <cstdint>
#include <compare>
#include <limits>

namespace ovlsim {

/** MPI-like rank index of a simulated process. */
using Rank = std::int32_t;

/** Message tag. */
using Tag = std::int32_t;

/** Payload size in bytes. */
using Bytes = std::uint64_t;

/** Count of virtual instructions executed in a computation burst. */
using Instr = std::uint64_t;

/**
 * Sentinel rank for "any source" matching. The replay engine does
 * not implement wildcard matching: traces using the sentinel are
 * flagged by trace::validateTraceSet and rejected with FatalError at
 * replay.
 */
inline constexpr Rank anyRank = -1;

/** Sentinel tag for "any tag" matching; unsupported like anyRank —
 * validated against and rejected at replay. */
inline constexpr Tag anyTag = -1;

/**
 * Simulated time: a strongly-typed integer nanosecond count.
 *
 * Integer time keeps event ordering exact and deterministic across the
 * eight-decade bandwidth sweeps the study performs; doubles appear only
 * at the analysis boundary (speedups, plots).
 */
class SimTime
{
  public:
    constexpr SimTime() : ns_(0) {}

    /** Construct from a raw nanosecond count. */
    static constexpr SimTime
    fromNs(std::int64_t ns)
    {
        return SimTime(ns);
    }

    /** Construct from microseconds (truncates toward zero). */
    static constexpr SimTime
    fromUs(double us)
    {
        return SimTime(static_cast<std::int64_t>(us * 1e3));
    }

    /** Construct from seconds (truncates toward zero). */
    static constexpr SimTime
    fromSeconds(double s)
    {
        return SimTime(static_cast<std::int64_t>(s * 1e9));
    }

    /** Largest representable instant; used as "never". */
    static constexpr SimTime
    max()
    {
        return SimTime(std::numeric_limits<std::int64_t>::max());
    }

    /** Zero duration / origin of time. */
    static constexpr SimTime
    zero()
    {
        return SimTime(0);
    }

    constexpr std::int64_t ns() const { return ns_; }
    constexpr double toUs() const { return static_cast<double>(ns_) / 1e3; }
    constexpr double
    toSeconds() const
    {
        return static_cast<double>(ns_) / 1e9;
    }

    constexpr auto operator<=>(const SimTime &) const = default;

    constexpr SimTime
    operator+(SimTime other) const
    {
        return SimTime(ns_ + other.ns_);
    }

    constexpr SimTime
    operator-(SimTime other) const
    {
        return SimTime(ns_ - other.ns_);
    }

    constexpr SimTime &
    operator+=(SimTime other)
    {
        ns_ += other.ns_;
        return *this;
    }

    constexpr SimTime &
    operator-=(SimTime other)
    {
        ns_ -= other.ns_;
        return *this;
    }

    /** Scale a duration by an integer factor. */
    constexpr SimTime
    operator*(std::int64_t k) const
    {
        return SimTime(ns_ * k);
    }

  private:
    explicit constexpr SimTime(std::int64_t ns) : ns_(ns) {}

    std::int64_t ns_;
};

} // namespace ovlsim

#endif // OVLSIM_UTIL_TYPES_HH
