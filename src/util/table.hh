/**
 * @file
 * Aligned console tables and CSV output for the experiment harness.
 *
 * Every bench binary prints the paper's rows/series through
 * TablePrinter and mirrors them to CSV through CsvWriter so that
 * results can be replotted.
 */

#ifndef OVLSIM_UTIL_TABLE_HH
#define OVLSIM_UTIL_TABLE_HH

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

namespace ovlsim {

/**
 * Collects rows of string cells and renders them with aligned columns
 * and an underlined header.
 */
class TablePrinter
{
  public:
    /** Define the header row. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as the header. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows added so far. */
    std::size_t rows() const { return rows_.size(); }

    /** Render the full table to a stream. */
    void print(std::ostream &os) const;

    /** Render the full table to a string. */
    std::string toString() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Line-per-record CSV writer with minimal quoting.
 */
class CsvWriter
{
  public:
    /** Open (truncate) the file and emit the header row. */
    CsvWriter(const std::string &path,
              const std::vector<std::string> &headers);

    /** Append one record. */
    void addRow(const std::vector<std::string> &cells);

    /** Path the file was opened at. */
    const std::string &path() const { return path_; }

  private:
    void writeLine(const std::vector<std::string> &cells);

    std::string path_;
    std::ofstream out_;
    std::size_t columns_;
};

} // namespace ovlsim

#endif // OVLSIM_UTIL_TABLE_HH
