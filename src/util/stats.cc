#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "logging.hh"

namespace ovlsim {

void
OnlineStats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
OnlineStats::min() const
{
    ovlAssert(count_ > 0, "min() of empty stats");
    return min_;
}

double
OnlineStats::max() const
{
    ovlAssert(count_ > 0, "max() of empty stats");
    return max_;
}

double
OnlineStats::variance() const
{
    if (count_ == 0)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    ovlAssert(hi > lo, "histogram range must be non-empty");
    ovlAssert(bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    const double frac = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(counts_.size()));
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
        static_cast<double>(counts_.size());
}

double
Histogram::binHigh(std::size_t i) const
{
    return binLow(i + 1);
}

std::string
Histogram::render(std::size_t width) const
{
    std::uint64_t peak = 1;
    for (const auto c : counts_)
        peak = std::max(peak, c);

    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar_len = static_cast<std::size_t>(
            static_cast<double>(counts_[i]) /
            static_cast<double>(peak) * static_cast<double>(width));
        os << "[" << binLow(i) << ", " << binHigh(i) << ") "
           << std::string(bar_len, '#') << " " << counts_[i] << "\n";
    }
    return os.str();
}

double
percentile(std::vector<double> values, double p)
{
    ovlAssert(!values.empty(), "percentile of empty sample");
    ovlAssert(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values.front();
    const double pos =
        p / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double
geometricMean(const std::vector<double> &values)
{
    ovlAssert(!values.empty(), "geometricMean of empty sample");
    double log_sum = 0.0;
    for (const double v : values) {
        ovlAssert(v > 0.0, "geometricMean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace ovlsim
