/**
 * @file
 * Small statistics toolkit used by the analysis layer and the tests.
 */

#ifndef OVLSIM_UTIL_STATS_HH
#define OVLSIM_UTIL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ovlsim {

/**
 * Numerically stable running summary (Welford's algorithm).
 *
 * Tracks count, min, max, mean and variance of a stream of doubles
 * without storing the samples.
 */
class OnlineStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another summary into this one (parallel Welford). */
    void merge(const OnlineStats &other);

    std::size_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const;
    double max() const;

    /** Population variance. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bin histogram over a [lo, hi) range with overflow and
 * underflow buckets.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t bins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }
    double binLow(std::size_t i) const;
    double binHigh(std::size_t i) const;

    /** Render as a fixed-width ASCII bar chart, one bin per line. */
    std::string render(std::size_t width = 50) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/** Percentile of a sample set (linear interpolation, p in [0,100]). */
double percentile(std::vector<double> values, double p);

/** Geometric mean; all values must be positive. */
double geometricMean(const std::vector<double> &values);

} // namespace ovlsim

#endif // OVLSIM_UTIL_STATS_HH
