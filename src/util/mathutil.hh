/**
 * @file
 * Small integer-math helpers shared across modules.
 */

#ifndef OVLSIM_UTIL_MATHUTIL_HH
#define OVLSIM_UTIL_MATHUTIL_HH

#include <cstdint>

namespace ovlsim {

/** Ceiling division for non-negative integers. */
constexpr std::uint64_t
ceilDiv(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0 : (num + den - 1) / den;
}

/** ceil(log2(x)) for x >= 1; log2ceil(1) == 0. */
constexpr std::uint32_t
log2Ceil(std::uint64_t x)
{
    std::uint32_t bits = 0;
    std::uint64_t value = 1;
    while (value < x) {
        value <<= 1;
        ++bits;
    }
    return bits;
}

/** True if x is a power of two (x > 0). */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Round up to the next multiple of `align` (align > 0). */
constexpr std::uint64_t
roundUp(std::uint64_t x, std::uint64_t align)
{
    return ceilDiv(x, align) * align;
}

} // namespace ovlsim

#endif // OVLSIM_UTIL_MATHUTIL_HH
