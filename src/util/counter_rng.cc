#include "counter_rng.hh"

#include <cmath>

namespace ovlsim {

double
CounterRng::nextExponential(double mean)
{
    return -mean * std::log1p(-nextDouble());
}

} // namespace ovlsim
