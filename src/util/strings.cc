#include "strings.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "logging.hh"

namespace ovlsim {

std::vector<std::string>
split(std::string_view text, char delim)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(delim, start);
        if (pos == std::string_view::npos) {
            fields.emplace_back(text.substr(start));
            break;
        }
        fields.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return fields;
}

std::string
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return std::string(text.substr(begin, end - begin));
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
        text.substr(text.size() - suffix.size()) == suffix;
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    for (auto &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string
strformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        panic("strformat: invalid format string");
    }
    std::string out(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

std::string
humanBytes(Bytes bytes)
{
    static const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    auto value = static_cast<double>(bytes);
    std::size_t unit = 0;
    while (value >= 1024.0 && unit + 1 < std::size(units)) {
        value /= 1024.0;
        ++unit;
    }
    if (unit == 0)
        return strformat("%llu B",
                         static_cast<unsigned long long>(bytes));
    return strformat("%.2f %s", value, units[unit]);
}

std::string
humanTime(SimTime t)
{
    const double ns = static_cast<double>(t.ns());
    const double abs_ns = ns < 0 ? -ns : ns;
    if (abs_ns < 1e3)
        return strformat("%.0f ns", ns);
    if (abs_ns < 1e6)
        return strformat("%.2f us", ns / 1e3);
    if (abs_ns < 1e9)
        return strformat("%.2f ms", ns / 1e6);
    return strformat("%.3f s", ns / 1e9);
}

std::string
humanRate(double bytes_per_second)
{
    static const char *units[] = {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"};
    double value = bytes_per_second;
    std::size_t unit = 0;
    while (value >= 1000.0 && unit + 1 < std::size(units)) {
        value /= 1000.0;
        ++unit;
    }
    return strformat("%.1f %s", value, units[unit]);
}

std::int64_t
parseInt(std::string_view text)
{
    const std::string s = trim(text);
    if (s.empty())
        fatal("parseInt: empty string");
    char *end = nullptr;
    errno = 0;
    const long long value = std::strtoll(s.c_str(), &end, 10);
    if (errno != 0 || end == s.c_str() || *end != '\0')
        fatal("parseInt: cannot parse '", s, "' as integer");
    return value;
}

double
parseDouble(std::string_view text)
{
    const std::string s = trim(text);
    if (s.empty())
        fatal("parseDouble: empty string");
    char *end = nullptr;
    errno = 0;
    const double value = std::strtod(s.c_str(), &end);
    if (errno != 0 || end == s.c_str() || *end != '\0')
        fatal("parseDouble: cannot parse '", s, "' as double");
    return value;
}

bool
parseBool(std::string_view text)
{
    const std::string s = toLower(trim(text));
    if (s == "true" || s == "1" || s == "yes" || s == "on")
        return true;
    if (s == "false" || s == "0" || s == "no" || s == "off")
        return false;
    fatal("parseBool: cannot parse '", s, "' as boolean");
}

} // namespace ovlsim
