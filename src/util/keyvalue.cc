#include "keyvalue.hh"

#include <cmath>
#include <istream>

#include "util/strings.hh"

namespace ovlsim {

KeyValueReader::KeyValueReader(std::istream &is, std::string source)
    : is_(is), source_(std::move(source))
{}

bool
KeyValueReader::next()
{
    std::string raw;
    while (std::getline(is_, raw)) {
        ++line_;
        const std::string text = trim(raw);
        if (text.empty() || text[0] == '#')
            continue;
        const auto eq = text.find('=');
        if (eq == std::string::npos) {
            fail("expected 'key = value', got '", text, "'");
        }
        key_ = trim(text.substr(0, eq));
        value_ = trim(text.substr(eq + 1));
        const auto [first, fresh] = seen_.emplace(key_, line_);
        if (!fresh) {
            fail("duplicate key '", key_, "' (first set on line ",
                 first->second, ")");
        }
        return true;
    }
    return false;
}

std::size_t
KeyValueReader::seenLine(const std::string &key) const
{
    const auto it = seen_.find(key);
    return it == seen_.end() ? 0 : it->second;
}

double
KeyValueReader::finiteDouble() const
{
    const double v = parseDouble(value_);
    if (std::isnan(v) || !std::isfinite(v)) {
        fail("key '", key_, "' must be a finite number, got '",
             value_, "'");
    }
    return v;
}

double
KeyValueReader::nonNegativeDouble() const
{
    const double v = finiteDouble();
    if (v < 0.0) {
        fail("key '", key_, "' must be non-negative, got '", value_,
             "'");
    }
    return v;
}

double
KeyValueReader::positiveDouble() const
{
    const double v = finiteDouble();
    if (v <= 0.0) {
        fail("key '", key_, "' must be positive, got '", value_,
             "'");
    }
    return v;
}

std::int64_t
KeyValueReader::integer() const
{
    return parseInt(value_);
}

std::int64_t
KeyValueReader::nonNegativeInt() const
{
    const std::int64_t v = parseInt(value_);
    if (v < 0) {
        fail("key '", key_, "' must be non-negative, got '", value_,
             "'");
    }
    return v;
}

std::int64_t
KeyValueReader::positiveInt() const
{
    const std::int64_t v = parseInt(value_);
    if (v <= 0) {
        fail("key '", key_, "' must be positive, got '", value_,
             "'");
    }
    return v;
}

bool
KeyValueReader::boolean() const
{
    return parseBool(value_);
}

} // namespace ovlsim
