#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ovlsim {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::warn};

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

LogLevel
parseLogLevel(const std::string &name)
{
    if (name == "quiet")
        return LogLevel::quiet;
    if (name == "warn")
        return LogLevel::warn;
    if (name == "inform")
        return LogLevel::inform;
    if (name == "debug")
        return LogLevel::debug;
    fatal("unknown log level `", name,
          "` (expected quiet, warn, inform or debug)");
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::quiet:
        return "quiet";
      case LogLevel::warn:
        return "warn";
      case LogLevel::inform:
        return "inform";
      case LogLevel::debug:
        return "debug";
    }
    panic("logLevelName: bad level");
}

void
initLogLevelFromEnv()
{
    const char *env = std::getenv("OVLSIM_LOG");
    if (env == nullptr || *env == '\0')
        return;
    setLogLevel(parseLogLevel(env));
}

namespace detail {

void
emitLog(LogLevel level, const char *prefix, const std::string &msg)
{
    if (static_cast<int>(level) >
        static_cast<int>(globalLevel.load(std::memory_order_relaxed))) {
        return;
    }
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
}

} // namespace detail

} // namespace ovlsim
