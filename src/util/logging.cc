#include "logging.hh"

#include <atomic>
#include <cstdio>

namespace ovlsim {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::warn};

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

namespace detail {

void
emitLog(LogLevel level, const char *prefix, const std::string &msg)
{
    if (static_cast<int>(level) >
        static_cast<int>(globalLevel.load(std::memory_order_relaxed))) {
        return;
    }
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
}

} // namespace detail

} // namespace ovlsim
