/**
 * @file
 * Open-addressing flat hash map for simulator hot paths.
 *
 * The replay engine keys per-channel FIFOs and per-rank request
 * tables by small integers; node-based std::map/unordered_map spend
 * most of their time chasing pointers and hitting the allocator. This
 * map stores key/value slots contiguously in one power-of-two array,
 * probes linearly (one cache line covers several probes) and erases
 * by backward shifting, so steady-state insert/find/erase never
 * allocate and never leave tombstones behind.
 *
 * Intentional non-goals: iterator/reference stability across
 * mutation, and allocator support. Iteration order is unspecified;
 * engine code must never let results depend on it (the determinism
 * tests guard this).
 */

#ifndef OVLSIM_UTIL_FLAT_MAP_HH
#define OVLSIM_UTIL_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/logging.hh"

namespace ovlsim {

/**
 * Default hasher: finalizes integral keys with a splitmix64-style
 * mixer so that packed keys with low-entropy bits (e.g. channel keys
 * whose tag field is constant) still spread over the table.
 * Non-integral keys defer to std::hash.
 */
template <typename Key>
struct FlatHash
{
    std::size_t
    operator()(const Key &key) const
    {
        if constexpr (std::is_integral_v<Key> ||
                      std::is_enum_v<Key>) {
            auto x = static_cast<std::uint64_t>(key);
            x ^= x >> 30;
            x *= 0xbf58476d1ce4e5b9ULL;
            x ^= x >> 27;
            x *= 0x94d049bb133111ebULL;
            x ^= x >> 31;
            return static_cast<std::size_t>(x);
        } else {
            return std::hash<Key>{}(key);
        }
    }
};

/**
 * Open-addressing hash map with linear probing and backward-shift
 * deletion. Capacity is always a power of two; the table grows at
 * the loadLimit() threshold (50% load). Keys must be
 * equality-comparable and cheap to copy.
 */
template <typename Key, typename T, typename Hash = FlatHash<Key>>
class FlatMap
{
  public:
    struct Slot
    {
        Key key;
        T value;
        bool used = false;
    };

    FlatMap() = default;

    explicit FlatMap(std::size_t expected) { reserve(expected); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return slots_.size(); }

    /** Ensure `expected` entries fit without rehashing. */
    void
    reserve(std::size_t expected)
    {
        std::size_t want = minCapacity;
        // Grow until `expected` stays below the load limit.
        while (loadLimit(want) < expected)
            want <<= 1;
        if (want > slots_.size())
            rehash(want);
    }

    /** Drop all entries; keeps the allocation. */
    void
    clear()
    {
        for (auto &slot : slots_)
            slot.used = false;
        size_ = 0;
    }

    /** Pointer to the mapped value, or nullptr if absent. */
    T *
    find(const Key &key)
    {
        if (slots_.empty())
            return nullptr;
        for (std::size_t i = home(key);; i = next(i)) {
            Slot &slot = slots_[i];
            if (!slot.used)
                return nullptr;
            if (slot.key == key)
                return &slot.value;
        }
    }

    const T *
    find(const Key &key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    bool contains(const Key &key) const { return find(key) != nullptr; }

    /**
     * Reference to the value for `key`, default-constructing it if
     * absent (std::map::operator[] semantics). May rehash on
     * insertion of a new key; the reference is invalidated by any
     * later mutation.
     */
    T &
    operator[](const Key &key)
    {
        if (T *existing = find(key))
            return *existing;
        Slot &slot = slots_[insertionSlot(key)];
        slot.used = true;
        slot.key = key;
        slot.value = T{};
        ++size_;
        return slot.value;
    }

    /** Insert or overwrite; returns true if the key was new. */
    bool
    insertOrAssign(const Key &key, T value)
    {
        if (T *existing = find(key)) {
            *existing = std::move(value);
            return false;
        }
        Slot &slot = slots_[insertionSlot(key)];
        slot.used = true;
        slot.key = key;
        slot.value = std::move(value);
        ++size_;
        return true;
    }

    /** Remove `key` if present; returns true if something was erased. */
    bool
    erase(const Key &key)
    {
        if (slots_.empty())
            return false;
        for (std::size_t i = home(key);; i = next(i)) {
            Slot &slot = slots_[i];
            if (!slot.used)
                return false;
            if (slot.key == key) {
                eraseSlot(i);
                --size_;
                return true;
            }
        }
    }

    /**
     * Visit every live entry as fn(key, value&). The visitation order
     * is unspecified; callers must not mutate the map during the
     * sweep.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &slot : slots_) {
            if (slot.used)
                fn(slot.key, slot.value);
        }
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &slot : slots_) {
            if (slot.used)
                fn(slot.key, slot.value);
        }
    }

  private:
    static constexpr std::size_t minCapacity = 16;

    /**
     * Maximum live entries for a given capacity: 50% load. Linear
     * probing degrades sharply as load grows (expected probe length
     * goes with 1/(1-load)^2), so trade memory for short chains.
     */
    static std::size_t
    loadLimit(std::size_t cap)
    {
        return cap / 2;
    }

    std::size_t
    home(const Key &key) const
    {
        return hash_(key) & (slots_.size() - 1);
    }

    std::size_t
    next(std::size_t i) const
    {
        return (i + 1) & (slots_.size() - 1);
    }

    void
    growIfNeeded()
    {
        if (slots_.empty()) {
            rehash(minCapacity);
        } else if (size_ + 1 > loadLimit(slots_.size())) {
            rehash(slots_.size() * 2);
        }
    }

    /**
     * Index of the empty slot where a NEW key must be stored,
     * growing first if the insertion would cross the load limit.
     * The key must not already be present.
     */
    std::size_t
    insertionSlot(const Key &key)
    {
        growIfNeeded();
        std::size_t i = home(key);
        while (slots_[i].used)
            i = next(i);
        return i;
    }

    void
    rehash(std::size_t new_cap)
    {
        ovlAssert((new_cap & (new_cap - 1)) == 0,
                  "flat map capacity must be a power of two");
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(new_cap, Slot{});
        for (auto &slot : old) {
            if (!slot.used)
                continue;
            std::size_t i = home(slot.key);
            while (slots_[i].used)
                i = next(i);
            slots_[i] = std::move(slot);
        }
    }

    /**
     * Backward-shift deletion: pull later elements of the probe chain
     * into the hole so lookups never need tombstones.
     */
    void
    eraseSlot(std::size_t hole)
    {
        std::size_t i = hole;
        std::size_t j = hole;
        while (true) {
            slots_[i].used = false;
            while (true) {
                j = next(j);
                if (!slots_[j].used)
                    return;
                // An element may fill the hole only if its home
                // position does not lie cyclically in (i, j]; such an
                // element would become unreachable from its home.
                const std::size_t h = home(slots_[j].key);
                const bool stuck = i <= j ? (i < h && h <= j)
                                          : (i < h || h <= j);
                if (!stuck)
                    break;
            }
            slots_[i] = std::move(slots_[j]);
            slots_[j].used = false;
            slots_[i].used = true;
            i = j;
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
    [[no_unique_address]] Hash hash_;
};

} // namespace ovlsim

#endif // OVLSIM_UTIL_FLAT_MAP_HH
