/**
 * @file
 * Status-message and error-termination helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (simulator bugs), fatal() for user errors that make
 * continuing impossible (bad configuration, malformed traces), and
 * warn()/inform() for non-fatal status messages. panic() and fatal()
 * throw typed exceptions so that library users (and the test suite)
 * can intercept them; the provided main() wrappers turn them into
 * abort()/exit(1) at the process boundary.
 */

#ifndef OVLSIM_UTIL_LOGGING_HH
#define OVLSIM_UTIL_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace ovlsim {

/** Thrown by panic(): an internal invariant was violated (a bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the input or configuration is unusable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Verbosity levels for non-fatal messages. */
enum class LogLevel { quiet = 0, warn = 1, inform = 2, debug = 3 };

/** Set the global verbosity threshold (default: inform). */
void setLogLevel(LogLevel level);

/** Current global verbosity threshold. */
LogLevel logLevel();

/** Parse a level name ("quiet", "warn", "inform", "debug");
 * FatalError on anything else. */
LogLevel parseLogLevel(const std::string &name);

/** Canonical name of a level ("quiet", "warn", ...). */
const char *logLevelName(LogLevel level);

/**
 * Apply the OVLSIM_LOG environment variable (a level name) to the
 * global threshold; a missing/empty variable leaves it untouched.
 * Called by Options::parse so every CLI tool honors it without
 * per-tool wiring; library users may call it directly.
 */
void initLogLevelFromEnv();

namespace detail {

/** Emit a formatted message line to stderr if level passes the filter. */
void emitLog(LogLevel level, const char *prefix, const std::string &msg);

/** Fold arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
foldMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report an internal error and throw PanicError. Never returns. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    const std::string msg =
        detail::foldMessage(std::forward<Args>(args)...);
    detail::emitLog(LogLevel::quiet, "panic: ", msg);
    throw PanicError(msg);
}

/** Report an unrecoverable user error and throw FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    const std::string msg =
        detail::foldMessage(std::forward<Args>(args)...);
    detail::emitLog(LogLevel::quiet, "fatal: ", msg);
    throw FatalError(msg);
}

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitLog(LogLevel::warn, "warn: ",
                    detail::foldMessage(std::forward<Args>(args)...));
}

/** Informative status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitLog(LogLevel::inform, "info: ",
                    detail::foldMessage(std::forward<Args>(args)...));
}

/** Debug-level message, off by default. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::emitLog(LogLevel::debug, "debug: ",
                    detail::foldMessage(std::forward<Args>(args)...));
}

/**
 * Internal invariant check; active in all build types.
 * Unlike assert(), violations raise PanicError with a message.
 */
template <typename... Args>
void
ovlAssert(bool condition, Args &&...args)
{
    if (!condition) {
        panic("assertion failed: ",
              detail::foldMessage(std::forward<Args>(args)...));
    }
}

} // namespace ovlsim

#endif // OVLSIM_UTIL_LOGGING_HH
