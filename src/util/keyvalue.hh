/**
 * @file
 * Line-oriented `key = value` configuration reader.
 *
 * Platform files, fault-model files and workload files all share the
 * same surface syntax and the same robustness guarantees: comments
 * and blank lines are skipped, malformed lines and duplicate keys
 * are fatal with the file and line number, and every numeric value
 * is domain-checked (NaN, inf and out-of-domain signs rejected)
 * right at the parse with the offending key in the error. This
 * reader factors those guarantees out so every new file format gets
 * them by construction instead of re-implementing them.
 */

#ifndef OVLSIM_UTIL_KEYVALUE_HH
#define OVLSIM_UTIL_KEYVALUE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "util/logging.hh"

namespace ovlsim {

/**
 * Pull-style reader over one `key = value` stream.
 *
 * Call next() in a loop; while it returns true, key()/value() hold
 * the current trimmed pair and the numeric helpers parse value()
 * under a domain check. A repeated key is fatal at its second
 * occurrence, naming the first line — a config describes one object,
 * so a duplicate is a typo (and silent last-one-wins made such
 * typos expensive to spot).
 */
class KeyValueReader
{
  public:
    KeyValueReader(std::istream &is, std::string source);

    /** Advance to the next key/value pair; false at end of stream. */
    bool next();

    const std::string &key() const { return key_; }
    const std::string &value() const { return value_; }
    std::size_t line() const { return line_; }
    const std::string &source() const { return source_; }

    /** Line a key was first parsed on, or 0 when never seen. */
    std::size_t seenLine(const std::string &key) const;

    /** Fatal error prefixed with `<source> line <line>: `. */
    template <typename... Args>
    [[noreturn]] void
    fail(Args &&...args) const
    {
        fatal(source_, " line ", line_, ": ",
              std::forward<Args>(args)...);
    }

    // Domain-checked parses of the current value; every error names
    // the file, line and key so an out-of-domain value can never
    // flow onward and surface as a confusing cost or assertion
    // later.
    double finiteDouble() const;
    double nonNegativeDouble() const;
    double positiveDouble() const;
    std::int64_t integer() const;
    std::int64_t nonNegativeInt() const;
    std::int64_t positiveInt() const;
    bool boolean() const;

  private:
    std::istream &is_;
    std::string source_;
    std::string key_;
    std::string value_;
    std::size_t line_ = 0;
    /** First-seen line of every key, for duplicate reporting. */
    std::map<std::string, std::size_t> seen_;
};

} // namespace ovlsim

#endif // OVLSIM_UTIL_KEYVALUE_HH
