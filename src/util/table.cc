#include "table.hh"

#include <algorithm>
#include <sstream>

#include "logging.hh"

namespace ovlsim {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    ovlAssert(!headers_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    ovlAssert(cells.size() == headers_.size(),
              "row has ", cells.size(), " cells, expected ",
              headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c]
               << std::string(widths[c] - row[c].size(), ' ');
            os << (c + 1 < row.size() ? "  " : "");
        }
        os << "\n";
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (const auto w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
TablePrinter::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

CsvWriter::CsvWriter(const std::string &path,
                     const std::vector<std::string> &headers)
    : path_(path), out_(path), columns_(headers.size())
{
    if (!out_)
        fatal("CsvWriter: cannot open '", path, "' for writing");
    ovlAssert(columns_ > 0, "CSV needs at least one column");
    writeLine(headers);
}

void
CsvWriter::addRow(const std::vector<std::string> &cells)
{
    ovlAssert(cells.size() == columns_,
              "CSV row has ", cells.size(), " cells, expected ",
              columns_);
    writeLine(cells);
}

void
CsvWriter::writeLine(const std::vector<std::string> &cells)
{
    for (std::size_t c = 0; c < cells.size(); ++c) {
        std::string field = cells[c];
        const bool needs_quoting =
            field.find_first_of(",\"\n") != std::string::npos;
        if (needs_quoting) {
            std::string quoted = "\"";
            for (const char ch : field) {
                if (ch == '"')
                    quoted += '"';
                quoted += ch;
            }
            quoted += '"';
            field = quoted;
        }
        out_ << field << (c + 1 < cells.size() ? "," : "");
    }
    out_ << "\n";
    out_.flush();
}

} // namespace ovlsim
