/**
 * @file
 * Counter-based (splittable) deterministic random generator.
 *
 * Stochastic scenario generation (src/res/) must produce the same
 * scenario for the same seed no matter which sweep lane expands it,
 * in what order the cells run, or how many processes a fault model
 * has. A stateful generator like util/random.hh's xoshiro makes
 * draw N depend on draws 0..N-1 across the whole program, so any
 * reordering of callers changes every stream. A counter-based
 * generator instead computes draw N as a pure hash of
 * (key, stream, N): every (key, stream) pair is an independent
 * sequence that can be created from scratch anywhere — on any
 * thread, in any order — and always yields the same values. This is
 * the Philox/Threefry idea in its cheapest useful form: a SplitMix64
 * style finalizer applied three times over the three words, which
 * passes the avalanche bar these mixers were designed for and costs
 * a handful of multiplies per draw.
 */

#ifndef OVLSIM_UTIL_COUNTER_RNG_HH
#define OVLSIM_UTIL_COUNTER_RNG_HH

#include <cstdint>

namespace ovlsim {

/**
 * One independent random sequence addressed by (key, stream).
 *
 * The object only carries the address and a draw counter; it is
 * trivially copyable and two instances with equal (key, stream)
 * always produce identical sequences. Use a different `stream` per
 * logical consumer (one per fault process, one per fuzz iteration)
 * so consumers never share or steal each other's draws.
 */
class CounterRng
{
  public:
    explicit CounterRng(std::uint64_t key, std::uint64_t stream = 0)
        : key_(key), stream_(stream)
    {}

    /** Independent child sequence; does not consume a draw. */
    CounterRng
    substream(std::uint64_t stream) const
    {
        return CounterRng(key_, mix(stream_ ^ mix(stream)));
    }

    /** Next raw 64-bit draw: a pure hash of (key, stream, n). */
    std::uint64_t
    next()
    {
        return at(counter_++);
    }

    /** Draw `n` without disturbing the counter (random access). */
    std::uint64_t
    at(std::uint64_t n) const
    {
        std::uint64_t x = mix(key_ + 0x9e3779b97f4a7c15ULL);
        x = mix(x ^ (stream_ + 0xbf58476d1ce4e5b9ULL));
        x = mix(x ^ (n + 0x94d049bb133111ebULL));
        return x;
    }

    /** Uniform double in [0, 1) (53 mantissa bits). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    nextDouble(double lo, double hi)
    {
        return lo + (hi - lo) * nextDouble();
    }

    /**
     * Exponentially distributed double with the given mean (the
     * MTBF/MTTR draw). -log(1 - u) with u in [0, 1) never takes the
     * log of zero.
     */
    double nextExponential(double mean);

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        // Debiased multiply-shift would need 128-bit arithmetic;
        // generation consumers tolerate the (2^-64 scale) modulo
        // bias, determinism is what matters here.
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    nextInRange(std::int64_t lo, std::int64_t hi)
    {
        return lo +
            static_cast<std::int64_t>(nextBelow(
                static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p = 0.5) { return nextDouble() < p; }

    std::uint64_t key() const { return key_; }
    std::uint64_t stream() const { return stream_; }

  private:
    /** Murmur3/SplitMix64-style 64-bit finalizer. */
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        x *= 0xc4ceb9fe1a85ec53ULL;
        x ^= x >> 33;
        return x;
    }

    std::uint64_t key_;
    std::uint64_t stream_;
    std::uint64_t counter_ = 0;
};

} // namespace ovlsim

#endif // OVLSIM_UTIL_COUNTER_RNG_HH
