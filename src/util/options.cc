#include "options.hh"

#include <sstream>

#include "logging.hh"
#include "strings.hh"

namespace ovlsim {

void
Options::declare(const std::string &name,
                 const std::string &default_value,
                 const std::string &help)
{
    ovlAssert(!name.empty(), "option name must not be empty");
    ovlAssert(!decls_.count(name), "option '", name,
              "' declared twice");
    decls_[name] = Decl{default_value, help};
}

void
Options::parse(int argc, const char *const *argv)
{
    // Every CLI tool passes through here exactly once, so the
    // OVLSIM_LOG environment hook rides along without per-tool
    // wiring.
    initLogLevelFromEnv();
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (!startsWith(arg, "--")) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        std::string name;
        std::string value;
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            const auto it = decls_.find(name);
            if (it == decls_.end())
                fatal("unknown option --", name);
            // Boolean flags may omit the value; other options
            // consume the next argument.
            const bool is_flag = it->second.defaultValue == "true" ||
                it->second.defaultValue == "false";
            if (is_flag) {
                value = "true";
            } else {
                if (i + 1 >= argc)
                    fatal("option --", name, " expects a value");
                value = argv[++i];
            }
        }
        if (!decls_.count(name))
            fatal("unknown option --", name);
        values_[name] = value;
    }
}

bool
Options::supplied(const std::string &name) const
{
    return values_.count(name) > 0;
}

const std::string &
Options::lookup(const std::string &name) const
{
    const auto vit = values_.find(name);
    if (vit != values_.end())
        return vit->second;
    const auto dit = decls_.find(name);
    if (dit == decls_.end())
        fatal("option '", name, "' was never declared");
    return dit->second.defaultValue;
}

std::string
Options::getString(const std::string &name) const
{
    return lookup(name);
}

std::int64_t
Options::getInt(const std::string &name) const
{
    return parseInt(lookup(name));
}

double
Options::getDouble(const std::string &name) const
{
    return parseDouble(lookup(name));
}

bool
Options::getBool(const std::string &name) const
{
    return parseBool(lookup(name));
}

std::string
Options::usage(const std::string &program) const
{
    std::ostringstream os;
    os << "usage: " << program << " [options]\n";
    for (const auto &[name, decl] : decls_) {
        os << "  --" << name << " (default: "
           << (decl.defaultValue.empty() ? "\"\"" : decl.defaultValue)
           << ")\n      " << decl.help << "\n";
    }
    return os.str();
}

} // namespace ovlsim
