/**
 * @file
 * D-ary heap for the simulator event queue.
 *
 * A binary heap does one comparison per level over log2(n) levels; a
 * 4-ary heap halves the depth at the cost of three sibling
 * comparisons per level, which is a net win for pop-heavy workloads
 * on shallow trees because all four children share a cache line or
 * two. The element type is kept small (the engine's Event is packed
 * to 16 bytes) so sift moves are cheap.
 *
 * The comparator follows std::priority_queue conventions: with
 * Compare = std::greater<T>, the smallest element is on top (a
 * min-heap), which is what a discrete-event queue wants.
 */

#ifndef OVLSIM_UTIL_DARY_HEAP_HH
#define OVLSIM_UTIL_DARY_HEAP_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace ovlsim {

template <typename T, std::size_t D = 4,
          typename Compare = std::greater<T>>
class DaryHeap
{
    static_assert(D >= 2, "heap arity must be at least 2");

  public:
    DaryHeap() = default;

    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }

    void reserve(std::size_t n) { items_.reserve(n); }

    const T &top() const { return items_.front(); }

    void
    push(T value)
    {
        items_.push_back(std::move(value));
        siftUp(items_.size() - 1);
    }

    void
    pop()
    {
        T last = std::move(items_.back());
        items_.pop_back();
        if (!items_.empty()) {
            items_.front() = std::move(last);
            siftDown(0);
        }
    }

    void
    clear()
    {
        items_.clear();
    }

    /**
     * Raw element access in storage (not priority) order, for
     * whole-heap transforms: the checkpoint seam shifts every
     * pending event's time by one constant, and snapshot restore
     * walks a saved heap to rebuild a filtered copy. A mutating
     * visitor must preserve the relative ordering of every element
     * pair (e.g. add the same offset to each key), otherwise the
     * heap invariant silently breaks.
     */
    T &operator[](std::size_t i) { return items_[i]; }
    const T &operator[](std::size_t i) const { return items_[i]; }

  private:
    static std::size_t parent(std::size_t i) { return (i - 1) / D; }
    static std::size_t firstChild(std::size_t i) { return i * D + 1; }

    void
    siftUp(std::size_t i)
    {
        T value = std::move(items_[i]);
        while (i > 0) {
            const std::size_t p = parent(i);
            if (!cmp_(items_[p], value))
                break;
            items_[i] = std::move(items_[p]);
            i = p;
        }
        items_[i] = std::move(value);
    }

    void
    siftDown(std::size_t i)
    {
        const std::size_t n = items_.size();
        T value = std::move(items_[i]);
        while (true) {
            const std::size_t first = firstChild(i);
            if (first >= n)
                break;
            const std::size_t last =
                first + D < n ? first + D : n;
            std::size_t best = first;
            for (std::size_t c = first + 1; c < last; ++c) {
                if (cmp_(items_[best], items_[c]))
                    best = c;
            }
            if (!cmp_(value, items_[best]))
                break;
            items_[i] = std::move(items_[best]);
            i = best;
        }
        items_[i] = std::move(value);
    }

    std::vector<T> items_;
    [[no_unique_address]] Compare cmp_;
};

} // namespace ovlsim

#endif // OVLSIM_UTIL_DARY_HEAP_HH
