/**
 * @file
 * Fixed-size thread pool for fanning independent replays across
 * cores.
 *
 * The study layer runs campaigns of dozens-to-hundreds of mutually
 * independent replays (bandwidth sweeps, bisections, variant
 * construction). This pool runs such index-addressed task sets with
 * one long-lived worker per lane, so callers can keep one reusable
 * ReplaySession per lane and results stay bit-identical to the
 * sequential path: task i always writes slot i, and no task observes
 * another's state.
 *
 * The calling thread participates as lane 0, so a pool of size 1
 * spawns no threads at all and parallelFor degenerates to a plain
 * loop — the sequential path and the 1-thread parallel path are the
 * same code.
 */

#ifndef OVLSIM_UTIL_THREAD_POOL_HH
#define OVLSIM_UTIL_THREAD_POOL_HH

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace ovlsim {

class ThreadPool
{
  public:
    /**
     * One named host-time interval recorded on one lane (campaign
     * telemetry for Chrome-trace export, src/obs/). Times are
     * steady-clock nanoseconds relative to the enableSpans() call.
     */
    struct LaneSpan
    {
        std::string name;
        int lane = 0;
        std::uint64_t beginNs = 0;
        std::uint64_t endNs = 0;
    };

    /** Threads to use for `requested` (<= 0 means all hardware
     * cores). */
    static int
    resolveThreads(int requested)
    {
        if (requested > 0)
            return requested;
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? static_cast<int>(hw) : 1;
    }

    /**
     * Create a pool of `threads` lanes (<= 0 means all hardware
     * cores). Lane 0 is the calling thread; `threads - 1` workers
     * are spawned.
     */
    explicit ThreadPool(int threads)
    {
        lanes_ = resolveThreads(threads);
        workers_.reserve(static_cast<std::size_t>(lanes_ - 1));
        for (int lane = 1; lane < lanes_; ++lane) {
            workers_.emplace_back(
                [this, lane] { workerLoop(lane); });
        }
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        wake_.notify_all();
        for (auto &worker : workers_)
            worker.join();
    }

    /** Number of lanes (worker count including the caller). */
    int size() const { return lanes_; }

    /**
     * Run fn(task, lane) for every task in [0, count), distributing
     * tasks dynamically over all lanes; returns once every task has
     * finished. The caller runs tasks on lane 0. Task slots indexed
     * by `task` make results deterministic regardless of which lane
     * runs what. If any task throws, the remaining unclaimed tasks
     * are skipped (their result slots stay untouched) and the first
     * exception caught is rethrown here after all lanes drain.
     *
     * Not reentrant: tasks must not call parallelFor on the same
     * pool.
     */
    void
    parallelFor(std::size_t count,
                const std::function<void(std::size_t, int)> &fn)
    {
        if (count == 0)
            return;
        if (lanes_ == 1 || count == 1) {
            for (std::size_t task = 0; task < count; ++task)
                fn(task, 0);
            return;
        }
        {
            // Workers enter a job only after observing, under this
            // mutex, a new generation whose job is still OPEN. The
            // jobOpen_ flag closes the entry window before this call
            // returns, so a worker that slept through the whole job
            // (all tasks drained by other lanes) cannot slip into
            // runTasks later and race with the next publication's
            // writes to fn_/count_/nextTask_.
            std::lock_guard<std::mutex> lock(mutex_);
            fn_ = &fn;
            count_ = count;
            nextTask_.store(0, std::memory_order_relaxed);
            pending_.store(count, std::memory_order_relaxed);
            failed_.store(false, std::memory_order_relaxed);
            error_ = nullptr;
            jobOpen_ = true;
            ++generation_;
        }
        wake_.notify_all();
        runTasks(0);
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] {
            return pending_.load(std::memory_order_acquire) == 0 &&
                active_ == 0;
        });
        jobOpen_ = false;
        fn_ = nullptr;
        if (error_)
            std::rethrow_exception(error_);
    }

    /**
     * Opt into per-lane span recording and (re)start the span
     * clock. Off by default: spanBegin/spanEnd are no-ops until
     * this is called, so instrumented sweeps cost nothing unless a
     * caller asks for telemetry. Call between jobs only.
     */
    void
    enableSpans()
    {
        spansEnabled_ = true;
        spanEpoch_ = std::chrono::steady_clock::now();
        laneSpans_.assign(static_cast<std::size_t>(lanes_), {});
        laneOpen_.assign(static_cast<std::size_t>(lanes_), {});
    }

    bool spansEnabled() const { return spansEnabled_; }

    /**
     * Open a named span on `lane`. Lock-free by construction: each
     * lane appends only to its own buffer, and the buffers are
     * handed to the caller only after parallelFor's completion
     * barrier (whose mutex publishes the writes). Spans may nest
     * per lane; spanEnd closes the innermost open one. Must be
     * called from the lane's own task context.
     */
    void
    spanBegin(int lane, std::string name)
    {
        if (!spansEnabled_)
            return;
        auto &spans = laneSpans_[static_cast<std::size_t>(lane)];
        laneOpen_[static_cast<std::size_t>(lane)].push_back(
            spans.size());
        spans.push_back(
            LaneSpan{std::move(name), lane, spanNowNs(), 0});
    }

    /** Close the innermost open span on `lane`. */
    void
    spanEnd(int lane)
    {
        if (!spansEnabled_)
            return;
        auto &open = laneOpen_[static_cast<std::size_t>(lane)];
        if (open.empty())
            return;
        laneSpans_[static_cast<std::size_t>(lane)][open.back()]
            .endNs = spanNowNs();
        open.pop_back();
    }

    /**
     * Drain every lane's closed spans into one list ordered by
     * (beginNs, lane) and reset the buffers. Call between jobs
     * only (after parallelFor returned); still-open spans are
     * dropped.
     */
    std::vector<LaneSpan>
    takeSpans()
    {
        std::vector<LaneSpan> all;
        for (auto &spans : laneSpans_) {
            for (auto &span : spans) {
                if (span.endNs >= span.beginNs && span.endNs != 0)
                    all.push_back(std::move(span));
            }
            spans.clear();
        }
        for (auto &open : laneOpen_)
            open.clear();
        std::sort(all.begin(), all.end(),
                  [](const LaneSpan &a, const LaneSpan &b) {
                      if (a.beginNs != b.beginNs)
                          return a.beginNs < b.beginNs;
                      return a.lane < b.lane;
                  });
        return all;
    }

  private:
    std::uint64_t
    spanNowNs() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - spanEpoch_)
                .count());
    }

    void
    runTasks(int lane)
    {
        while (true) {
            const std::size_t task = nextTask_.fetch_add(
                1, std::memory_order_relaxed);
            if (task >= count_)
                return;
            // After a failure the remaining tasks are abandoned;
            // the exception propagates to the caller.
            if (!failed_.load(std::memory_order_relaxed)) {
                try {
                    (*fn_)(task, lane);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(mutex_);
                    if (!error_)
                        error_ = std::current_exception();
                    failed_.store(true,
                                  std::memory_order_relaxed);
                }
            }
            if (pending_.fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(mutex_);
                done_.notify_all();
                return;
            }
        }
    }

    void
    workerLoop(int lane)
    {
        std::uint64_t seen = 0;
        while (true) {
            {
                std::unique_lock<std::mutex> lock(mutex_);
                // Joining requires an open job: once the caller has
                // collected a job's results, stragglers must wait
                // for the next publication instead of entering
                // runTasks against reclaimed job state.
                wake_.wait(lock, [this, seen] {
                    return stopping_ ||
                        (generation_ != seen && jobOpen_);
                });
                if (stopping_)
                    return;
                seen = generation_;
                ++active_;
            }
            runTasks(lane);
            {
                std::lock_guard<std::mutex> lock(mutex_);
                --active_;
            }
            done_.notify_all();
        }
    }

    int lanes_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    bool stopping_ = false;
    std::uint64_t generation_ = 0;
    /** True from a job's publication until its results are
     * collected; guards the worker entry window. */
    bool jobOpen_ = false;
    /** Workers currently inside runTasks (caller not counted). */
    int active_ = 0;

    const std::function<void(std::size_t, int)> *fn_ = nullptr;
    std::size_t count_ = 0;
    std::atomic<std::size_t> nextTask_{0};
    std::atomic<std::size_t> pending_{0};
    std::atomic<bool> failed_{false};
    std::exception_ptr error_;

    /** Per-lane span buffers (see enableSpans). Lane-private
     * during a job; published to the caller by the completion
     * barrier's mutex. */
    bool spansEnabled_ = false;
    std::chrono::steady_clock::time_point spanEpoch_;
    std::vector<std::vector<LaneSpan>> laneSpans_;
    std::vector<std::vector<std::size_t>> laneOpen_;
};

} // namespace ovlsim

#endif // OVLSIM_UTIL_THREAD_POOL_HH
