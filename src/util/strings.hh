/**
 * @file
 * String formatting and parsing helpers.
 */

#ifndef OVLSIM_UTIL_STRINGS_HH
#define OVLSIM_UTIL_STRINGS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "types.hh"

namespace ovlsim {

/** Split on a delimiter; empty fields are preserved. */
std::vector<std::string> split(std::string_view text, char delim);

/** Strip leading/trailing whitespace. */
std::string trim(std::string_view text);

/** True if text begins with the given prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** True if text ends with the given suffix. */
bool endsWith(std::string_view text, std::string_view suffix);

/** Lower-case copy (ASCII). */
std::string toLower(std::string_view text);

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Human-readable byte count, e.g. "2.5 MiB". */
std::string humanBytes(Bytes bytes);

/** Human-readable duration, e.g. "1.24 ms". */
std::string humanTime(SimTime t);

/** Human-readable rate, e.g. "512.0 MB/s" from bytes per second. */
std::string humanRate(double bytes_per_second);

/** Parse a signed integer; throws FatalError on garbage. */
std::int64_t parseInt(std::string_view text);

/** Parse a double; throws FatalError on garbage. */
double parseDouble(std::string_view text);

/** Parse a boolean ("true/false/1/0/yes/no"); throws on garbage. */
bool parseBool(std::string_view text);

} // namespace ovlsim

#endif // OVLSIM_UTIL_STRINGS_HH
