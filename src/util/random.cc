#include "random.hh"

#include <cmath>

#include "logging.hh"

namespace ovlsim {

namespace {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    ovlAssert(bound > 0, "nextBelow bound must be positive");
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        const std::uint64_t threshold = (-bound) % bound;
        while (low < threshold) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    ovlAssert(lo <= hi, "nextInRange requires lo <= hi");
    const auto span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextExponential(double mean)
{
    double u = nextDouble();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

double
Rng::nextGaussian(double mean, double stddev)
{
    double u1 = nextDouble();
    const double u2 = nextDouble();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

Rng
Rng::split()
{
    return Rng((*this)() ^ 0xa5a5a5a55a5a5a5aULL);
}

} // namespace ovlsim
