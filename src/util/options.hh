/**
 * @file
 * Minimal command-line option parser for the examples and benches.
 *
 * Supports "--key=value", "--key value" and boolean "--flag" forms.
 * Unknown options raise FatalError so typos surface immediately.
 */

#ifndef OVLSIM_UTIL_OPTIONS_HH
#define OVLSIM_UTIL_OPTIONS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ovlsim {

/** Parsed command line with typed accessors and defaults. */
class Options
{
  public:
    /**
     * Declare an option before parsing.
     *
     * @param name option name without leading dashes
     * @param default_value textual default
     * @param help one-line description for usage output
     */
    void declare(const std::string &name,
                 const std::string &default_value,
                 const std::string &help);

    /** Parse argv; throws FatalError on undeclared options. */
    void parse(int argc, const char *const *argv);

    /** True if the user supplied the option explicitly. */
    bool supplied(const std::string &name) const;

    std::string getString(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getBool(const std::string &name) const;

    /** Positional (non-option) arguments in order of appearance. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Render a usage block listing all declared options. */
    std::string usage(const std::string &program) const;

  private:
    struct Decl
    {
        std::string defaultValue;
        std::string help;
    };

    const std::string &lookup(const std::string &name) const;

    std::map<std::string, Decl> decls_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace ovlsim

#endif // OVLSIM_UTIL_OPTIONS_HH
