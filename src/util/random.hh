/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The whole environment must be reproducible: identical inputs give
 * byte-identical traces and results. All stochastic choices therefore
 * flow through this seeded xoshiro256** generator instead of
 * std::random_device or rand().
 */

#ifndef OVLSIM_UTIL_RANDOM_HH
#define OVLSIM_UTIL_RANDOM_HH

#include <array>
#include <cstdint>
#include <vector>

namespace ovlsim {

/**
 * xoshiro256** generator (Blackman & Vigna), seeded via SplitMix64.
 *
 * Satisfies UniformRandomBitGenerator so it can drive <random>
 * distributions where needed, though the member helpers below cover
 * the library's own needs.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded with SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return ~static_cast<result_type>(0);
    }

    /** Next raw 64-bit output. */
    result_type operator()();

    /** Uniform integer in [0, bound) using Lemire's method. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p = 0.5);

    /** Exponentially distributed double with the given mean. */
    double nextExponential(double mean);

    /** Normally distributed double (Box-Muller). */
    double nextGaussian(double mean, double stddev);

    /** Fisher-Yates shuffle of a vector, in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        for (std::size_t i = values.size(); i > 1; --i) {
            const std::size_t j =
                static_cast<std::size_t>(nextBelow(i));
            std::swap(values[i - 1], values[j]);
        }
    }

    /** Fork a child generator with a decorrelated seed. */
    Rng split();

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace ovlsim

#endif // OVLSIM_UTIL_RANDOM_HH
