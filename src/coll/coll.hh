/**
 * @file
 * Collective-model configuration: which pricing model a platform
 * uses for CollectiveRecs and which point-to-point algorithm lowers
 * each operation under the algorithmic model.
 *
 * The seed platform prices every collective with one analytic
 * latency+bandwidth formula (sim::collectiveCost) — collectives are
 * invisible to the link-contention network of src/net/. The
 * algorithmic model instead lowers each collective into a compiled
 * schedule of point-to-point transfers (coll/schedule.hh) executed
 * through the engine's ordinary transfer path, so collective traffic
 * occupies links and contends exactly like application messages —
 * the SMPI/SimGrid fidelity step that makes topology studies
 * meaningful for collective-heavy applications.
 *
 * Algorithm selection follows the classic MPI implementations:
 * binomial trees for rooted broadcast/reduce, recursive doubling for
 * small allreduce/allgather, rings for large ones, a dissemination
 * exchange for barriers, pairwise exchange for alltoall and linear
 * fan-in/out for gather/scatter. `Algorithm::automatic` applies the
 * size-based cutoffs below; platform files may pin one algorithm per
 * operation (collective_algorithm_<op> keys), with unsupported
 * (op, algorithm) combinations rejected by a clear FatalError.
 */

#ifndef OVLSIM_COLL_COLL_HH
#define OVLSIM_COLL_COLL_HH

#include <array>
#include <cstdint>
#include <string>

#include "trace/record.hh"
#include "util/types.hh"

namespace ovlsim::coll {

/** How a platform prices CollectiveRecs. */
enum class CollectiveModel : std::uint8_t {
    /** The seed analytic formulas (sim::collectiveCost). */
    analytic,
    /** Lowered point-to-point schedules on the transfer path. */
    algorithmic,
};

/** Stable name of a collective model (config files, reports). */
const char *collectiveModelName(CollectiveModel model);

/** Parse a collective model name; throws FatalError on garbage. */
CollectiveModel collectiveModelFromName(const std::string &name);

/** Point-to-point lowering algorithms for collectives. */
enum class Algorithm : std::uint8_t {
    /** Size/shape-based selection (the cutoffs below). */
    automatic,
    /** Direct fan-in/out to or from the root. */
    linear,
    /** Binomial tree rooted at the operation's root. */
    binomialTree,
    /** Recursive doubling (with a fold for non-power-of-two). */
    recursiveDoubling,
    /** Ring exchange (bandwidth-optimal for large payloads). */
    ring,
    /** Pairwise exchange over P-1 shifted rounds. */
    pairwise,
    /** Dissemination exchange (any rank count, ceil(lg P) rounds). */
    dissemination,
};

/** Stable name of an algorithm (config files, reports). */
const char *algorithmName(Algorithm algorithm);

/** Parse an algorithm name; throws FatalError on garbage. */
Algorithm algorithmFromName(const std::string &name);

/** Number of CollOp values (sizes the per-op override table). */
inline constexpr std::size_t collOpCount = 8;

/**
 * True when `algorithm` can lower `op` (automatic always can).
 * The schedule compiler refuses unsupported pairs with a
 * FatalError; platform parsing rejects them up front.
 */
bool algorithmSupports(trace::CollOp op, Algorithm algorithm);

/**
 * Payload size above which `automatic` switches allreduce and
 * allgather from the latency-optimal recursive doubling to the
 * bandwidth-optimal ring (the classic MPI cutoff shape).
 */
inline constexpr Bytes ringCutoffBytes = Bytes(256) * 1024;

/**
 * Resolve the algorithm `automatic` selects for one operation:
 *
 *   barrier     -> dissemination
 *   broadcast   -> binomial tree
 *   reduce      -> binomial tree
 *   allreduce   -> recursive doubling; ring above ringCutoffBytes
 *   allgather   -> recursive doubling (power-of-two rank counts,
 *                  small payloads); ring otherwise
 *   gather      -> linear
 *   scatter     -> linear
 *   alltoall    -> pairwise
 *
 * A non-automatic `pinned` wins unconditionally; it must support
 * `op` (FatalError otherwise). `bytes` is the operation's block
 * size (the cross-rank max the program compiler resolved).
 */
Algorithm selectAlgorithm(trace::CollOp op, int ranks, Bytes bytes,
                          Algorithm pinned = Algorithm::automatic);

/** Per-operation algorithm pins; automatic everywhere by default. */
struct AlgorithmOverrides
{
    std::array<Algorithm, collOpCount> byOp{};

    Algorithm
    of(trace::CollOp op) const
    {
        return byOp[static_cast<std::size_t>(op)];
    }

    void
    set(trace::CollOp op, Algorithm algorithm)
    {
        byOp[static_cast<std::size_t>(op)] = algorithm;
    }

    bool operator==(const AlgorithmOverrides &) const = default;
};

/**
 * Validate every pinned (op, algorithm) pair; throws FatalError
 * naming the offending pair and the algorithms the op supports.
 */
void validateOverrides(const AlgorithmOverrides &overrides);

} // namespace ovlsim::coll

#endif // OVLSIM_COLL_COLL_HH
