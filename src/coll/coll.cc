#include "coll.hh"

#include "util/logging.hh"
#include "util/mathutil.hh"
#include "util/strings.hh"

namespace ovlsim::coll {

const char *
collectiveModelName(CollectiveModel model)
{
    switch (model) {
      case CollectiveModel::analytic: return "analytic";
      case CollectiveModel::algorithmic: return "algorithmic";
    }
    panic("collectiveModelName: bad CollectiveModel value");
}

CollectiveModel
collectiveModelFromName(const std::string &name)
{
    const std::string s = toLower(name);
    if (s == "analytic")
        return CollectiveModel::analytic;
    if (s == "algorithmic")
        return CollectiveModel::algorithmic;
    fatal("unknown collective model '", name,
          "' (expected one of: analytic algorithmic)");
}

const char *
algorithmName(Algorithm algorithm)
{
    switch (algorithm) {
      case Algorithm::automatic: return "auto";
      case Algorithm::linear: return "linear";
      case Algorithm::binomialTree: return "binomial-tree";
      case Algorithm::recursiveDoubling: return "recursive-doubling";
      case Algorithm::ring: return "ring";
      case Algorithm::pairwise: return "pairwise";
      case Algorithm::dissemination: return "dissemination";
    }
    panic("algorithmName: bad Algorithm value");
}

Algorithm
algorithmFromName(const std::string &name)
{
    const std::string s = toLower(name);
    if (s == "auto" || s == "automatic")
        return Algorithm::automatic;
    if (s == "linear")
        return Algorithm::linear;
    if (s == "binomial-tree" || s == "binomial")
        return Algorithm::binomialTree;
    if (s == "recursive-doubling" || s == "rdb")
        return Algorithm::recursiveDoubling;
    if (s == "ring")
        return Algorithm::ring;
    if (s == "pairwise")
        return Algorithm::pairwise;
    if (s == "dissemination")
        return Algorithm::dissemination;
    fatal("unknown collective algorithm '", name,
          "' (expected one of: auto linear binomial-tree "
          "recursive-doubling ring pairwise dissemination)");
}

bool
algorithmSupports(trace::CollOp op, Algorithm algorithm)
{
    using trace::CollOp;
    if (algorithm == Algorithm::automatic)
        return true;
    switch (op) {
      case CollOp::barrier:
        return algorithm == Algorithm::dissemination;
      case CollOp::broadcast:
      case CollOp::reduce:
        return algorithm == Algorithm::binomialTree ||
            algorithm == Algorithm::linear;
      case CollOp::allReduce:
      case CollOp::allGather:
        return algorithm == Algorithm::recursiveDoubling ||
            algorithm == Algorithm::ring;
      case CollOp::gather:
      case CollOp::scatter:
        return algorithm == Algorithm::linear;
      case CollOp::allToAll:
        return algorithm == Algorithm::pairwise;
    }
    panic("algorithmSupports: bad CollOp value");
}

/** The algorithms an op accepts, for error messages. */
static std::string
supportedList(trace::CollOp op)
{
    std::string list;
    for (const Algorithm algorithm :
         {Algorithm::linear, Algorithm::binomialTree,
          Algorithm::recursiveDoubling, Algorithm::ring,
          Algorithm::pairwise, Algorithm::dissemination}) {
        if (!algorithmSupports(op, algorithm))
            continue;
        if (!list.empty())
            list += ' ';
        list += algorithmName(algorithm);
    }
    return list;
}

Algorithm
selectAlgorithm(trace::CollOp op, int ranks, Bytes bytes,
                Algorithm pinned)
{
    using trace::CollOp;
    ovlAssert(ranks > 0, "selectAlgorithm: collective over zero "
                         "ranks");
    if (pinned != Algorithm::automatic) {
        if (!algorithmSupports(op, pinned)) {
            fatal("collective algorithm ", algorithmName(pinned),
                  " cannot lower ", trace::collOpName(op),
                  " (supported: ", supportedList(op), ")");
        }
        return pinned;
    }
    const bool pow2 =
        isPowerOfTwo(static_cast<std::uint64_t>(ranks));
    switch (op) {
      case CollOp::barrier:
        return Algorithm::dissemination;
      case CollOp::broadcast:
      case CollOp::reduce:
        return Algorithm::binomialTree;
      case CollOp::allReduce:
        return bytes > ringCutoffBytes ? Algorithm::ring
                                       : Algorithm::recursiveDoubling;
      case CollOp::allGather:
        // The recursive-doubling allgather needs a power-of-two
        // rank count (no fold doubles the gathered blocks cleanly);
        // ring handles any count and wins for large payloads anyway.
        return (pow2 && bytes <= ringCutoffBytes)
                   ? Algorithm::recursiveDoubling
                   : Algorithm::ring;
      case CollOp::gather:
      case CollOp::scatter:
        return Algorithm::linear;
      case CollOp::allToAll:
        return Algorithm::pairwise;
    }
    panic("selectAlgorithm: bad CollOp value");
}

void
validateOverrides(const AlgorithmOverrides &overrides)
{
    for (std::size_t i = 0; i < collOpCount; ++i) {
        const auto op = static_cast<trace::CollOp>(i);
        const Algorithm algorithm = overrides.byOp[i];
        if (!algorithmSupports(op, algorithm)) {
            fatal("collective algorithm ",
                  algorithmName(algorithm), " cannot lower ",
                  trace::collOpName(op), " (supported: ",
                  supportedList(op), ")");
        }
    }
}

} // namespace ovlsim::coll
