/**
 * @file
 * Compiled collective schedules: one collective lowered into the
 * point-to-point transfers that realize it.
 *
 * A Schedule is the algorithmic-collective analogue of a
 * sim::ReplayProgram: the per-rank sequence of sends and receives an
 * algorithm performs, compiled once per (op, rank count, root,
 * payload, algorithm) and shared immutably across every replay,
 * session and sweep lane that executes that collective
 * (compileSchedule caches globally, like sim::compileShared).
 *
 * Execution semantics (the engine's contract, sim/engine.cc):
 *
 *  - each rank walks its step list in order from the instant it
 *    enters the collective,
 *  - a send step posts one transfer on the engine's ordinary
 *    transfer path (bus admission or link-network contention) and
 *    advances only when its injection completes — so back-to-back
 *    sends serialize through the sender exactly like the classic
 *    algorithms assume,
 *  - a recv step advances when its matching transfer has arrived
 *    (arrivals are pre-matched by slot id: no tag matching, no
 *    interference with application point-to-point channels).
 *
 * Deadlock-freedom is by construction: recv steps only wait on
 * transfers, transfers only wait on their sender's earlier steps,
 * and every builder emits rounds of "all sends, then all recvs", so
 * the step dependency graph is acyclic. The coll test suite checks
 * this property by topologically executing every compiled schedule,
 * and checks that each schedule moves exactly the bytes the
 * operation's semantics require per rank.
 */

#ifndef OVLSIM_COLL_SCHEDULE_HH
#define OVLSIM_COLL_SCHEDULE_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "coll/coll.hh"
#include "trace/record.hh"
#include "util/types.hh"

namespace ovlsim::coll {

/**
 * One step of one rank's schedule. Send steps carry the slot id of
 * the matching recv step at the peer; recv steps carry their own
 * slot id. Slot ids are dense per schedule, so an executor tracks
 * arrivals in one flat array.
 */
struct Step
{
    Bytes bytes = 0;
    Rank peer = 0;
    std::uint32_t slot = 0;
    bool isSend = false;
};

/** An immutable compiled collective. */
class Schedule
{
  public:
    Schedule() = default;

    trace::CollOp op() const { return op_; }
    /** The resolved (never `automatic`) lowering algorithm. */
    Algorithm algorithm() const { return algorithm_; }
    int ranks() const { return ranks_; }
    Rank root() const { return root_; }
    /** The block size the schedule was compiled for. */
    Bytes blockBytes() const { return blockBytes_; }

    /** Rank `r`'s steps, in execution order. */
    std::span<const Step>
    stepsOf(Rank r) const
    {
        const auto i = static_cast<std::size_t>(r);
        return {steps_.data() + rankBegin_[i],
                steps_.data() + rankBegin_[i + 1]};
    }

    /** Total recv steps (sizes an executor's arrival table). */
    std::uint32_t recvSlots() const { return recvSlots_; }

    /** Total send steps (sizes the engine's transfer arena). */
    std::size_t sendCount() const { return sendCount_; }

    std::size_t totalSteps() const { return steps_.size(); }

    /** Sum of send-step payloads over all ranks. */
    Bytes totalBytes() const { return totalBytes_; }

    /** Heap footprint of the compiled tables (cache accounting). */
    std::size_t
    memoryBytes() const
    {
        return steps_.size() * sizeof(Step) +
            rankBegin_.size() * sizeof(std::uint32_t);
    }

  private:
    friend class ScheduleBuilder;

    trace::CollOp op_ = trace::CollOp::barrier;
    Algorithm algorithm_ = Algorithm::dissemination;
    int ranks_ = 0;
    Rank root_ = 0;
    Bytes blockBytes_ = 0;

    /** Steps in rank-major CSR layout. */
    std::vector<Step> steps_;
    std::vector<std::uint32_t> rankBegin_;
    std::uint32_t recvSlots_ = 0;
    std::size_t sendCount_ = 0;
    Bytes totalBytes_ = 0;
};

/**
 * Lower one collective into a schedule for `ranks` ranks.
 *
 * `bytes` is the operation's block size — the cross-rank max of the
 * trace's send/recv byte counts, exactly the value the analytic
 * model prices (for gather/scatter/allgather/alltoall it is the
 * per-rank block, matching the analytic (P-1)-term). `root` only
 * matters for rooted operations. `algorithm` may be `automatic`
 * (selectAlgorithm applies) or a pin; unsupported pins raise a
 * FatalError naming the op and its supported algorithms.
 *
 * Compilation is deterministic and cached: equal inputs return the
 * same shared immutable schedule on every call, from any thread —
 * sweep lanes share one schedule per collective shape the way they
 * share one ReplayProgram per trace variant.
 */
std::shared_ptr<const Schedule>
compileSchedule(trace::CollOp op, int ranks, Rank root, Bytes bytes,
                Algorithm algorithm = Algorithm::automatic);

/**
 * Drop every compiled schedule from the process-wide cache and
 * reset its obs::scheduleCache() counters' entry/byte gauges (the
 * hit/miss history stays). Live shared_ptrs remain valid — the
 * cache only gives up its references. Test seam: lets a test run
 * against a cold cache; hit/miss/size accounting is read through
 * obs::cacheReport().
 */
void clearScheduleCache();

} // namespace ovlsim::coll

#endif // OVLSIM_COLL_SCHEDULE_HH
