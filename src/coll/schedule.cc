#include "schedule.hh"

#include <map>
#include <mutex>
#include <tuple>

#include "obs/stats.hh"
#include "util/logging.hh"
#include "util/mathutil.hh"

namespace ovlsim::coll {

using trace::CollOp;

/**
 * Accumulates a schedule round by round. A round is a set of
 * transfers that are logically concurrent: every rank's sends of
 * the round are appended before any of its recvs, so a rank never
 * waits on a peer before injecting what the peer needs — the
 * construction that keeps every schedule's dependency graph acyclic
 * regardless of the rank-iteration order inside a round.
 */
class ScheduleBuilder
{
  public:
    ScheduleBuilder(CollOp op, Algorithm algorithm, int ranks,
                    Rank root, Bytes block)
        : perRank_(static_cast<std::size_t>(ranks))
    {
        sealed_.op_ = op;
        sealed_.algorithm_ = algorithm;
        sealed_.ranks_ = ranks;
        sealed_.root_ = root;
        sealed_.blockBytes_ = block;
    }

    struct Xfer
    {
        Rank src;
        Rank dst;
        Bytes bytes;
    };

    void
    round(std::span<const Xfer> xfers)
    {
        const std::uint32_t base = sealed_.recvSlots_;
        for (std::size_t i = 0; i < xfers.size(); ++i) {
            const Xfer &x = xfers[i];
            ovlAssert(x.src != x.dst,
                      "collective schedule: self-transfer");
            const auto slot =
                base + static_cast<std::uint32_t>(i);
            perRank_[static_cast<std::size_t>(x.src)].push_back(
                Step{x.bytes, x.dst, slot, true});
            ++sealed_.sendCount_;
            sealed_.totalBytes_ += x.bytes;
        }
        for (std::size_t i = 0; i < xfers.size(); ++i) {
            const Xfer &x = xfers[i];
            const auto slot =
                base + static_cast<std::uint32_t>(i);
            perRank_[static_cast<std::size_t>(x.dst)].push_back(
                Step{x.bytes, x.src, slot, false});
        }
        sealed_.recvSlots_ =
            base + static_cast<std::uint32_t>(xfers.size());
    }

    Schedule
    seal() &&
    {
        sealed_.rankBegin_.reserve(perRank_.size() + 1);
        sealed_.rankBegin_.push_back(0);
        std::size_t total = 0;
        for (const auto &steps : perRank_)
            total += steps.size();
        sealed_.steps_.reserve(total);
        for (const auto &steps : perRank_) {
            sealed_.steps_.insert(sealed_.steps_.end(),
                                  steps.begin(), steps.end());
            sealed_.rankBegin_.push_back(
                static_cast<std::uint32_t>(
                    sealed_.steps_.size()));
        }
        return std::move(sealed_);
    }

  private:
    Schedule sealed_;
    std::vector<std::vector<Step>> perRank_;
};

namespace {

using Xfer = ScheduleBuilder::Xfer;
using Builder = ScheduleBuilder;

/** Dissemination exchange: ceil(lg P) rounds, any rank count. */
void
buildDissemination(Builder &b, int ranks, Bytes bytes)
{
    std::vector<Xfer> xfers;
    for (int k = 1; k < ranks; k <<= 1) {
        xfers.clear();
        for (Rank r = 0; r < ranks; ++r)
            xfers.push_back(Xfer{r, (r + k) % ranks, bytes});
        b.round(xfers);
    }
}

/** Binomial tree away from the root (broadcast). */
void
buildBinomialBcast(Builder &b, int ranks, Rank root, Bytes bytes)
{
    const auto actual = [&](int v) {
        return static_cast<Rank>((v + root) % ranks);
    };
    std::vector<Xfer> xfers;
    for (int mask = 1; mask < ranks; mask <<= 1) {
        xfers.clear();
        for (int v = 0; v < mask; ++v) {
            if (v + mask < ranks) {
                xfers.push_back(
                    Xfer{actual(v), actual(v + mask), bytes});
            }
        }
        b.round(xfers);
    }
}

/** Binomial tree toward the root (reduce): the bcast reversed. */
void
buildBinomialReduce(Builder &b, int ranks, Rank root, Bytes bytes)
{
    const auto actual = [&](int v) {
        return static_cast<Rank>((v + root) % ranks);
    };
    std::vector<Xfer> xfers;
    // A virtual rank sends once, in the round of its lowest set
    // bit, and receives from v + mask in every earlier round.
    for (int mask = 1; mask < ranks; mask <<= 1) {
        xfers.clear();
        for (int v = mask; v < ranks; v += 2 * mask)
            xfers.push_back(Xfer{actual(v), actual(v - mask), bytes});
        b.round(xfers);
    }
}

/** Direct fan-out from the root (bcast/scatter). */
void
buildLinearFanOut(Builder &b, int ranks, Rank root, Bytes bytes)
{
    std::vector<Xfer> xfers;
    for (Rank r = 0; r < ranks; ++r) {
        if (r != root)
            xfers.push_back(Xfer{root, r, bytes});
    }
    b.round(xfers);
}

/** Direct fan-in to the root (reduce/gather). */
void
buildLinearFanIn(Builder &b, int ranks, Rank root, Bytes bytes)
{
    std::vector<Xfer> xfers;
    for (Rank r = 0; r < ranks; ++r) {
        if (r != root)
            xfers.push_back(Xfer{r, root, bytes});
    }
    b.round(xfers);
}

/**
 * Recursive-doubling allreduce with the standard non-power-of-two
 * fold: the first 2*rem ranks pair up (odd halves park their
 * contribution with the even halves), the surviving power-of-two
 * set exchanges full payloads over lg(p2) rounds, and the parked
 * ranks get the result back.
 */
void
buildRecursiveDoublingAllReduce(Builder &b, int ranks, Bytes bytes)
{
    int p2 = 1;
    while (p2 * 2 <= ranks)
        p2 *= 2;
    const int rem = ranks - p2;
    const auto active = [&](int j) {
        return static_cast<Rank>(j < rem ? 2 * j : j + rem);
    };

    std::vector<Xfer> xfers;
    if (rem > 0) {
        xfers.clear();
        for (int i = 0; i < rem; ++i) {
            xfers.push_back(Xfer{static_cast<Rank>(2 * i + 1),
                                 static_cast<Rank>(2 * i), bytes});
        }
        b.round(xfers);
    }
    for (int mask = 1; mask < p2; mask <<= 1) {
        xfers.clear();
        for (int j = 0; j < p2; ++j) {
            if ((j & mask) == 0) {
                xfers.push_back(
                    Xfer{active(j), active(j | mask), bytes});
                xfers.push_back(
                    Xfer{active(j | mask), active(j), bytes});
            }
        }
        b.round(xfers);
    }
    if (rem > 0) {
        xfers.clear();
        for (int i = 0; i < rem; ++i) {
            xfers.push_back(Xfer{static_cast<Rank>(2 * i),
                                 static_cast<Rank>(2 * i + 1),
                                 bytes});
        }
        b.round(xfers);
    }
}

/**
 * Ring allreduce: reduce-scatter then allgather, P-1 rounds each.
 * The payload splits into P near-equal chunks (the first
 * bytes % P chunks carry the remainder), so every rank moves
 * ~2 * (P-1)/P * bytes — the bandwidth-optimal schedule.
 */
void
buildRingAllReduce(Builder &b, int ranks, Bytes bytes)
{
    const auto chunk = [&](int i) {
        const auto p = static_cast<Bytes>(ranks);
        return bytes / p +
            (static_cast<Bytes>(i) < bytes % p ? 1 : 0);
    };
    std::vector<Xfer> xfers;
    for (int s = 0; s < ranks - 1; ++s) {
        xfers.clear();
        for (Rank r = 0; r < ranks; ++r) {
            xfers.push_back(Xfer{r, (r + 1) % ranks,
                                 chunk((r - s + ranks) % ranks)});
        }
        b.round(xfers);
    }
    for (int s = 0; s < ranks - 1; ++s) {
        xfers.clear();
        for (Rank r = 0; r < ranks; ++r) {
            xfers.push_back(
                Xfer{r, (r + 1) % ranks,
                     chunk((r + 1 - s + 2 * ranks) % ranks)});
        }
        b.round(xfers);
    }
}

/**
 * Recursive-doubling allgather: partners exchange their gathered
 * halves, doubling the payload each round. Power-of-two ranks only
 * (enforced by the caller).
 */
void
buildRecursiveDoublingAllGather(Builder &b, int ranks, Bytes block)
{
    std::vector<Xfer> xfers;
    for (int mask = 1; mask < ranks; mask <<= 1) {
        const Bytes bytes = block * static_cast<Bytes>(mask);
        xfers.clear();
        for (int j = 0; j < ranks; ++j) {
            if ((j & mask) == 0) {
                xfers.push_back(Xfer{static_cast<Rank>(j),
                                     static_cast<Rank>(j | mask),
                                     bytes});
                xfers.push_back(Xfer{static_cast<Rank>(j | mask),
                                     static_cast<Rank>(j), bytes});
            }
        }
        b.round(xfers);
    }
}

/** Ring allgather: P-1 rounds forwarding one block each. */
void
buildRingAllGather(Builder &b, int ranks, Bytes block)
{
    std::vector<Xfer> xfers;
    for (int s = 0; s < ranks - 1; ++s) {
        xfers.clear();
        for (Rank r = 0; r < ranks; ++r)
            xfers.push_back(Xfer{r, (r + 1) % ranks, block});
        b.round(xfers);
    }
}

/** Pairwise exchange: round k sends to r+k and receives from r-k. */
void
buildPairwiseAllToAll(Builder &b, int ranks, Bytes block)
{
    std::vector<Xfer> xfers;
    for (int k = 1; k < ranks; ++k) {
        xfers.clear();
        for (Rank r = 0; r < ranks; ++r)
            xfers.push_back(Xfer{r, (r + k) % ranks, block});
        b.round(xfers);
    }
}

Schedule
build(CollOp op, int ranks, Rank root, Bytes bytes,
      Algorithm algorithm)
{
    Builder b(op, algorithm, ranks, root, bytes);
    if (ranks <= 1)
        return std::move(b).seal();

    switch (op) {
      case CollOp::barrier:
        buildDissemination(b, ranks, 0);
        break;
      case CollOp::broadcast:
        if (algorithm == Algorithm::linear)
            buildLinearFanOut(b, ranks, root, bytes);
        else
            buildBinomialBcast(b, ranks, root, bytes);
        break;
      case CollOp::reduce:
        if (algorithm == Algorithm::linear)
            buildLinearFanIn(b, ranks, root, bytes);
        else
            buildBinomialReduce(b, ranks, root, bytes);
        break;
      case CollOp::allReduce:
        if (algorithm == Algorithm::ring)
            buildRingAllReduce(b, ranks, bytes);
        else
            buildRecursiveDoublingAllReduce(b, ranks, bytes);
        break;
      case CollOp::allGather:
        if (algorithm == Algorithm::recursiveDoubling) {
            if (!isPowerOfTwo(static_cast<std::uint64_t>(ranks))) {
                fatal("recursive-doubling allgather requires a "
                      "power-of-two rank count, got ", ranks,
                      " (use ring or auto)");
            }
            buildRecursiveDoublingAllGather(b, ranks, bytes);
        } else {
            buildRingAllGather(b, ranks, bytes);
        }
        break;
      case CollOp::gather:
        buildLinearFanIn(b, ranks, root, bytes);
        break;
      case CollOp::scatter:
        buildLinearFanOut(b, ranks, root, bytes);
        break;
      case CollOp::allToAll:
        buildPairwiseAllToAll(b, ranks, bytes);
        break;
    }
    return std::move(b).seal();
}

/** Rooted ops key on the root; the rest normalize it away. */
bool
isRooted(CollOp op)
{
    return op == CollOp::broadcast || op == CollOp::reduce ||
        op == CollOp::gather || op == CollOp::scatter;
}

using CacheKey =
    std::tuple<std::uint8_t, int, Rank, Bytes, std::uint8_t>;

std::mutex cacheMutex;
std::map<CacheKey, std::shared_ptr<const Schedule>> &
cache()
{
    static std::map<CacheKey, std::shared_ptr<const Schedule>> map;
    return map;
}

} // namespace

std::shared_ptr<const Schedule>
compileSchedule(trace::CollOp op, int ranks, Rank root, Bytes bytes,
                Algorithm algorithm)
{
    ovlAssert(ranks > 0,
              "compileSchedule: collective over zero ranks");
    if (!isRooted(op))
        root = 0;
    if (root < 0 || root >= ranks) {
        fatal("collective ", trace::collOpName(op), " root ", root,
              " out of range for ", ranks, " ranks");
    }
    const Algorithm resolved =
        selectAlgorithm(op, ranks, bytes, algorithm);
    const CacheKey key{static_cast<std::uint8_t>(op), ranks, root,
                       bytes, static_cast<std::uint8_t>(resolved)};
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        const auto it = cache().find(key);
        if (it != cache().end()) {
            obs::scheduleCache().recordHit();
            return it->second;
        }
    }
    obs::scheduleCache().recordMiss();
    // Build outside the lock (compilation is pure); first insert
    // wins when two threads race on the same shape.
    auto built = std::make_shared<const Schedule>(
        build(op, ranks, root, bytes, resolved));
    std::lock_guard<std::mutex> lock(cacheMutex);
    const auto [it, inserted] =
        cache().emplace(key, std::move(built));
    if (inserted)
        obs::scheduleCache().recordInsert(
            it->second->memoryBytes());
    return it->second;
}

void
clearScheduleCache()
{
    std::lock_guard<std::mutex> lock(cacheMutex);
    cache().clear();
    obs::scheduleCache().recordClear();
}

} // namespace ovlsim::coll
