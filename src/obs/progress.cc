#include "obs/progress.hh"

#include <cstdio>

namespace ovlsim::obs {

namespace {

/** Minimum gap between two non-final status lines. */
constexpr std::int64_t reportIntervalMs = 500;

} // namespace

Progress::Progress(std::string label, std::size_t total)
    : label_(std::move(label)), total_(total),
      start_(std::chrono::steady_clock::now())
{}

Progress::~Progress()
{
    finish();
}

void
Progress::tick(std::size_t n)
{
    const std::size_t now =
        done_.fetch_add(n, std::memory_order_relaxed) + n;
    const bool last = now >= total_;
    if (!last) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start_)
                .count();
        // One thread wins the gate per interval; losers skip the
        // line. Relaxed is fine: a lost or duplicated status line
        // is cosmetic.
        std::int64_t gate =
            nextReportMs_.load(std::memory_order_relaxed);
        if (elapsed < gate ||
            !nextReportMs_.compare_exchange_strong(
                gate, elapsed + reportIntervalMs,
                std::memory_order_relaxed))
            return;
    }
    report(now, last);
    if (last)
        finished_.store(true, std::memory_order_relaxed);
}

void
Progress::finish()
{
    if (finished_.exchange(true, std::memory_order_relaxed))
        return;
    report(done_.load(std::memory_order_relaxed), true);
}

void
Progress::report(std::size_t done_now, bool final_line)
{
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start_)
            .count();
    const double pct = total_ == 0
        ? 100.0
        : 100.0 * static_cast<double>(done_now) /
            static_cast<double>(total_);
    if (final_line || done_now == 0) {
        std::fprintf(stderr,
                     "progress: %s %zu/%zu (%.0f%%) in %.1fs\n",
                     label_.c_str(), done_now, total_, pct,
                     elapsed);
        return;
    }
    const double eta = elapsed *
        static_cast<double>(total_ - done_now) /
        static_cast<double>(done_now);
    std::fprintf(stderr,
                 "progress: %s %zu/%zu (%.0f%%) eta %.1fs\n",
                 label_.c_str(), done_now, total_, pct, eta);
}

} // namespace ovlsim::obs
