/**
 * @file
 * Opt-in campaign progress reporter.
 *
 * A Progress instance tracks done/total over one campaign and
 * prints throttled status lines (points done, percentage, ETA) to
 * stderr. Sweep drivers tick it once per completed point from
 * whatever lane finished the point, so it is thread-safe and cheap:
 * one relaxed atomic increment per tick, and the line is printed by
 * at most one thread at a time via a time-gate exchange.
 *
 * Nothing is printed unless the caller constructs one and hands it
 * to a sweep (examples expose this as --progress), keeping default
 * campaign output byte-identical to the pre-observability builds.
 */

#ifndef OVLSIM_OBS_PROGRESS_HH
#define OVLSIM_OBS_PROGRESS_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>

namespace ovlsim::obs {

class Progress
{
  public:
    /**
     * Track `total` points under `label`. The clock starts here;
     * ETA extrapolates the mean per-point rate observed so far.
     */
    Progress(std::string label, std::size_t total);

    Progress(const Progress &) = delete;
    Progress &operator=(const Progress &) = delete;

    /** Prints the final line if finish() was never called. */
    ~Progress();

    /**
     * Record `n` completed points. Thread-safe; prints at most one
     * status line per reporting interval (and always at 100%).
     */
    void tick(std::size_t n = 1);

    /** Points completed so far. */
    std::size_t
    done() const
    {
        return done_.load(std::memory_order_relaxed);
    }

    std::size_t total() const { return total_; }

    /** Print the final summary line (idempotent). */
    void finish();

  private:
    void report(std::size_t done_now, bool final_line);

    std::string label_;
    std::size_t total_;
    std::chrono::steady_clock::time_point start_;
    std::atomic<std::size_t> done_{0};
    /** Milliseconds-since-start gate of the next allowed report. */
    std::atomic<std::int64_t> nextReportMs_{0};
    std::atomic<bool> finished_{false};
};

} // namespace ovlsim::obs

#endif // OVLSIM_OBS_PROGRESS_HH
