#include "obs/chrome_trace.hh"

#include <algorithm>
#include <cstdio>

#include "util/logging.hh"
#include "util/strings.hh"

namespace ovlsim::obs {

namespace {

/** Simulated pid and host pid of the two event worlds. */
constexpr int simPid = 0;
constexpr int hostPid = 1;

double
usOf(SimTime t)
{
    return static_cast<double>(t.ns()) / 1e3;
}

void
appendMeta(std::string &out, int pid, const char *what,
           const std::string &name, int tid)
{
    out += strformat("{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,"
                     "\"tid\":%d,\"args\":{\"name\":\"%s\"}},\n",
                     what, pid, tid, name.c_str());
}

void
appendDuration(std::string &out, int pid, int tid,
               const char *name, double begin_us, double end_us)
{
    out += strformat("{\"name\":\"%s\",\"ph\":\"B\",\"pid\":%d,"
                     "\"tid\":%d,\"ts\":%.3f},\n",
                     name, pid, tid, begin_us);
    out += strformat("{\"name\":\"%s\",\"ph\":\"E\",\"pid\":%d,"
                     "\"tid\":%d,\"ts\":%.3f},\n",
                     name, pid, tid, end_us);
}

void
appendInstant(std::string &out, int pid, int tid, const char *name,
              double ts_us)
{
    out += strformat("{\"name\":\"%s\",\"ph\":\"i\",\"pid\":%d,"
                     "\"tid\":%d,\"ts\":%.3f,\"s\":\"p\"},\n",
                     name, pid, tid, ts_us);
}

/** Minimal JSON string escape for span names. */
std::string
escaped(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            // Control characters never appear in span labels; keep
            // the escape table to what the emitters can produce.
            out += c;
        }
    }
    return out;
}

} // namespace

std::string
chromeTraceJson(const sim::Timeline &timeline,
                std::span<const ThreadPool::LaneSpan> host_spans)
{
    std::string out;
    out += "{\n\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";

    const int nranks = timeline.ranks();
    // The machine track hosts machine-wide instants (checkpoints,
    // rollback cuts) one tid past the last rank, so per-track
    // timestamp monotonicity of the rank B/E streams is preserved.
    const int machineTid = nranks;

    appendMeta(out, simPid, "process_name", "simulated time", 0);
    for (Rank r = 0; r < nranks; ++r) {
        appendMeta(out, simPid, "thread_name",
                   strformat("rank %d", r), static_cast<int>(r));
    }
    if (!timeline.checkpoints().empty() || nranks > 0)
        appendMeta(out, simPid, "thread_name", "machine",
                   machineTid);

    // Per-rank state intervals, append order == time order, one
    // B/E pair per interval. Idle gaps stay gaps.
    std::vector<SimTime> rollbackCuts;
    for (Rank r = 0; r < nranks; ++r) {
        for (const sim::StateInterval &iv : timeline.intervals(r)) {
            if (iv.state == sim::RankState::idle)
                continue;
            appendDuration(out, simPid, static_cast<int>(r),
                           sim::rankStateName(iv.state),
                           usOf(iv.begin), usOf(iv.end));
            if (iv.state == sim::RankState::restart)
                rollbackCuts.push_back(iv.begin);
        }
    }

    // Machine-wide instants. Every surviving rank records the same
    // restart window, so the cuts dedup to one instant per
    // rollback.
    std::sort(rollbackCuts.begin(), rollbackCuts.end());
    rollbackCuts.erase(
        std::unique(rollbackCuts.begin(), rollbackCuts.end()),
        rollbackCuts.end());
    std::vector<std::pair<SimTime, const char *>> instants;
    for (const SimTime cut : rollbackCuts)
        instants.emplace_back(cut, "rollback");
    for (const sim::CheckpointMark &mark : timeline.checkpoints()) {
        instants.emplace_back(
            mark.at, mark.global ? "checkpoint (global)"
                                 : "checkpoint");
    }
    std::sort(instants.begin(), instants.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (const auto &[at, name] : instants)
        appendInstant(out, simPid, machineTid, name, usOf(at));

    // Host-time campaign spans, one track per lane, X events.
    if (!host_spans.empty()) {
        appendMeta(out, hostPid, "process_name", "host time", 0);
        int maxLane = 0;
        for (const ThreadPool::LaneSpan &span : host_spans) {
            if (span.lane > maxLane)
                maxLane = span.lane;
        }
        for (int lane = 0; lane <= maxLane; ++lane) {
            appendMeta(out, hostPid, "thread_name",
                       strformat("lane %d", lane), lane);
        }
        for (const ThreadPool::LaneSpan &span : host_spans) {
            out += strformat(
                "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,"
                "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f},\n",
                escaped(span.name).c_str(), hostPid, span.lane,
                static_cast<double>(span.beginNs) / 1e3,
                static_cast<double>(span.endNs - span.beginNs) /
                    1e3);
        }
    }

    // Strip the trailing ",\n" of the last event (valid JSON has
    // no trailing comma).
    if (out.size() >= 2 && out[out.size() - 2] == ',')
        out.erase(out.size() - 2, 1);
    out += "]\n}\n";
    return out;
}

void
writeChromeTrace(const std::string &path,
                 const sim::Timeline &timeline,
                 std::span<const ThreadPool::LaneSpan> host_spans)
{
    const std::string json = chromeTraceJson(timeline, host_spans);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        fatal("writeChromeTrace: cannot open ", path);
    const std::size_t written =
        std::fwrite(json.data(), 1, json.size(), f);
    const int rc = std::fclose(f);
    if (written != json.size() || rc != 0)
        fatal("writeChromeTrace: short write to ", path);
}

} // namespace ovlsim::obs
