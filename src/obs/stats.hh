/**
 * @file
 * Always-cheap engine and cache observability counters.
 *
 * EngineStats is a fixed slab of plain integers filled by single
 * increments on paths the replay engine already executes — no
 * atomics, no branches beyond what a compare for a high-water mark
 * costs — so counters stay on in every build, including the
 * benchmarked Release configuration. One replay fills one instance
 * (the engine is single-threaded per session); the result is copied
 * into sim::SimResult::stats at the end of run() and merged per
 * campaign row by the study runtime. Like eventsProcessed, the
 * counters are monotone across checkpoint rollbacks: rolled-back
 * events were still simulated work, so a restarted replay reports
 * the work it actually performed, not the work that survived.
 *
 * Cache counters cover the three process-wide compile caches
 * (core/study.cc ReplayProgram sharing, the per-session
 * net::compileTopology cache, the coll::compileSchedule cache).
 * They are shared across sweep lanes, hence atomic; cacheReport()
 * snapshots all three for reports and tests.
 */

#ifndef OVLSIM_OBS_STATS_HH
#define OVLSIM_OBS_STATS_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ovlsim::obs {

/** Fixed-slot per-replay counters (see file comment). */
struct EngineStats
{
    /** Events pushed onto the engine's event heap (includes the
     * heap rebuild of a checkpoint restore). */
    std::uint64_t heapPushes = 0;
    /** Events popped off the heap. Equal to heapPushes once a
     * replay drains; the pair pins the invariant cheaply. */
    std::uint64_t heapPops = 0;
    /** Channel-table accesses (postSend/postRecv FlatMap lookups). */
    std::uint64_t channelProbes = 0;
    /** Peak size of the transfer arena (exact-reserve check). */
    std::uint64_t arenaHighWater = 0;
    /** LinkNetwork bottleneck-rate recomputations performed. */
    std::uint64_t rateRecomputes = 0;
    /** Rate recomputations skipped by the touched-links filter. */
    std::uint64_t recomputesSkipped = 0;
    /** Finish re-arms actually scheduled after a rate change. */
    std::uint64_t rearmsTaken = 0;
    /** Flows examined on a completion/cancel/rescale that needed
     * no earlier finish event (unchanged or later finish). */
    std::uint64_t rearmsSkipped = 0;
    /** Scenario events applied (degrades, stalls, failures, ...). */
    std::uint64_t scenarioEvents = 0;
    /** Collective schedule steps retired (algorithmic model). */
    std::uint64_t collSteps = 0;
    /** Simulated time re-executed or paid as restart cost across
     * all rollbacks (sum of restore deltas), in nanoseconds. */
    std::uint64_t rollbackReworkNs = 0;

    bool operator==(const EngineStats &) const = default;

    /**
     * Fold another replay's stats into this one (campaign-row
     * aggregation): counters add, the high-water mark takes the
     * max. Commutative and associative, so campaign aggregates are
     * independent of point order and thread count.
     */
    EngineStats &
    merge(const EngineStats &o)
    {
        heapPushes += o.heapPushes;
        heapPops += o.heapPops;
        channelProbes += o.channelProbes;
        if (o.arenaHighWater > arenaHighWater)
            arenaHighWater = o.arenaHighWater;
        rateRecomputes += o.rateRecomputes;
        recomputesSkipped += o.recomputesSkipped;
        rearmsTaken += o.rearmsTaken;
        rearmsSkipped += o.rearmsSkipped;
        scenarioEvents += o.scenarioEvents;
        collSteps += o.collSteps;
        rollbackReworkNs += o.rollbackReworkNs;
        return *this;
    }

    /** One-line "key=value ..." rendering for logs and reports. */
    std::string toString() const;
};

/**
 * Shared hit/miss/size/bytes counters of one process-wide compile
 * cache. Entries and bytes track the live cache content; hits and
 * misses are monotone totals. All atomics are relaxed: the values
 * are statistics, not synchronization.
 */
struct CacheCounters
{
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> entries{0};
    std::atomic<std::uint64_t> bytes{0};

    void
    recordHit()
    {
        hits.fetch_add(1, std::memory_order_relaxed);
    }

    void
    recordMiss()
    {
        misses.fetch_add(1, std::memory_order_relaxed);
    }

    /** A new entry of `entry_bytes` went live in the cache. */
    void
    recordInsert(std::uint64_t entry_bytes)
    {
        entries.fetch_add(1, std::memory_order_relaxed);
        bytes.fetch_add(entry_bytes, std::memory_order_relaxed);
    }

    /** The cache was emptied (clear hook); totals stay. */
    void
    recordClear()
    {
        entries.store(0, std::memory_order_relaxed);
        bytes.store(0, std::memory_order_relaxed);
    }
};

/** core/study.cc variant + original ReplayProgram cache. */
CacheCounters &studyCache();

/** net::compileTopology per-session route-table cache. */
CacheCounters &topologyCache();

/** coll::compileSchedule process-wide schedule cache. */
CacheCounters &scheduleCache();

/** Plain snapshot of one cache's counters. */
struct CacheReportRow
{
    std::string name;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;

    /** Hit fraction in [0, 1]; 0 when the cache was never asked. */
    double
    hitRate() const
    {
        const std::uint64_t asked = hits + misses;
        return asked == 0
            ? 0.0
            : static_cast<double>(hits) /
                static_cast<double>(asked);
    }
};

/** Snapshot all three compile caches ("study", "topology",
 * "schedule", in that order). */
std::vector<CacheReportRow> cacheReport();

/** Multi-line rendering of cacheReport() for reports. */
std::string cacheReportString();

/** Zero every cache counter (tests; not thread-safe vs. sweeps). */
void resetCacheStats();

} // namespace ovlsim::obs

#endif // OVLSIM_OBS_STATS_HH
