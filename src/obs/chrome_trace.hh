/**
 * @file
 * Chrome trace-event (Perfetto-loadable) JSON export.
 *
 * Two worlds share one trace file:
 *
 *  - Simulated time (pid 0): one track per rank from the replay's
 *    sim::Timeline. Compute/comm/stall/restart intervals become
 *    B/E duration-event pairs (one matched pair per interval, ts
 *    monotone per track), coordinated checkpoints become global
 *    instant events on a "machine" track, and each rollback's
 *    restart window additionally emits a "rollback" instant at its
 *    cut.
 *
 *  - Host time (pid 1): one track per sweep lane from the thread
 *    pool's opt-in span buffers (ThreadPool::enableSpans), e.g.
 *    compile vs. replay phases and per-point spans of a campaign.
 *    Host spans are emitted as X (complete) events — begin + dur —
 *    so arbitrary nesting needs no pairing discipline.
 *
 * All timestamps are microseconds (the trace-event convention):
 * simulated nanoseconds divided by 1e3, host nanoseconds since the
 * span epoch divided by 1e3. Load the file at ui.perfetto.dev or
 * chrome://tracing.
 */

#ifndef OVLSIM_OBS_CHROME_TRACE_HH
#define OVLSIM_OBS_CHROME_TRACE_HH

#include <span>
#include <string>

#include "sim/timeline.hh"
#include "util/thread_pool.hh"

namespace ovlsim::obs {

/** Render the trace-event JSON document (see file comment). */
std::string
chromeTraceJson(const sim::Timeline &timeline,
                std::span<const ThreadPool::LaneSpan> host_spans = {});

/** Write chromeTraceJson() to `path`; FatalError when the file
 * cannot be written. */
void
writeChromeTrace(const std::string &path,
                 const sim::Timeline &timeline,
                 std::span<const ThreadPool::LaneSpan> host_spans = {});

} // namespace ovlsim::obs

#endif // OVLSIM_OBS_CHROME_TRACE_HH
