#include "obs/stats.hh"

#include "util/strings.hh"

namespace ovlsim::obs {

std::string
EngineStats::toString() const
{
    return strformat(
        "heap=%llu/%llu probes=%llu arena_hw=%llu "
        "recompute=%llu/%llu rearm=%llu/%llu scen=%llu "
        "coll_steps=%llu rework_ns=%llu",
        static_cast<unsigned long long>(heapPushes),
        static_cast<unsigned long long>(heapPops),
        static_cast<unsigned long long>(channelProbes),
        static_cast<unsigned long long>(arenaHighWater),
        static_cast<unsigned long long>(rateRecomputes),
        static_cast<unsigned long long>(recomputesSkipped),
        static_cast<unsigned long long>(rearmsTaken),
        static_cast<unsigned long long>(rearmsSkipped),
        static_cast<unsigned long long>(scenarioEvents),
        static_cast<unsigned long long>(collSteps),
        static_cast<unsigned long long>(rollbackReworkNs));
}

namespace {

CacheCounters studyCounters;
CacheCounters topologyCounters;
CacheCounters scheduleCounters;

CacheReportRow
snapshotRow(const char *name, const CacheCounters &c)
{
    CacheReportRow row;
    row.name = name;
    row.hits = c.hits.load(std::memory_order_relaxed);
    row.misses = c.misses.load(std::memory_order_relaxed);
    row.entries = c.entries.load(std::memory_order_relaxed);
    row.bytes = c.bytes.load(std::memory_order_relaxed);
    return row;
}

void
zero(CacheCounters &c)
{
    c.hits.store(0, std::memory_order_relaxed);
    c.misses.store(0, std::memory_order_relaxed);
    c.entries.store(0, std::memory_order_relaxed);
    c.bytes.store(0, std::memory_order_relaxed);
}

} // namespace

CacheCounters &
studyCache()
{
    return studyCounters;
}

CacheCounters &
topologyCache()
{
    return topologyCounters;
}

CacheCounters &
scheduleCache()
{
    return scheduleCounters;
}

std::vector<CacheReportRow>
cacheReport()
{
    return {snapshotRow("study", studyCounters),
            snapshotRow("topology", topologyCounters),
            snapshotRow("schedule", scheduleCounters)};
}

std::string
cacheReportString()
{
    std::string out;
    for (const CacheReportRow &row : cacheReport()) {
        out += strformat(
            "cache %-8s hits %llu misses %llu (%.0f%% hit) "
            "entries %llu bytes %llu\n",
            row.name.c_str(),
            static_cast<unsigned long long>(row.hits),
            static_cast<unsigned long long>(row.misses),
            row.hitRate() * 100.0,
            static_cast<unsigned long long>(row.entries),
            static_cast<unsigned long long>(row.bytes));
    }
    return out;
}

void
resetCacheStats()
{
    zero(studyCounters);
    zero(topologyCounters);
    zero(scheduleCounters);
}

} // namespace ovlsim::obs
